"""Differential tests: batched slow-path generation ≡ scalar generation.

``MegaflowGenerator.generate_batch`` is a pure accelerator over the chunked
decision procedure: for any flow table, strategy, and burst of missed keys
it must return result-for-result what sequential ``generate`` calls return —
same entries, same order, same matched rules and ``rules_examined`` — while
the chunk-decision trie and exact-key memo behind it must be discarded on
every table mutation (dicts-as-truth: the ordered flow table is the only
source of classification truth).

The datapath half: under a small ``max_megaflows`` flow limit the batched
upcall engine must reject, suppress, and install exactly like the scalar
engine — across serial, thread, and process executors.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.classifier.actions import ALLOW, DENY
from repro.classifier.flowtable import FlowTable
from repro.classifier.rule import FlowRule, Match
from repro.classifier.slowpath import (
    EXACT_MATCH,
    OVS_DEFAULT,
    WILDCARDING,
    MegaflowGenerator,
)
from repro.packet.fields import FIELDS, FlowKey
from repro.switch.datapath import DatapathConfig
from repro.switch.sharded import ShardedDatapath

FIELD_POOL = ("ip_src", "ip_dst", "tp_src", "tp_dst", "ip_proto")
STRATEGIES = {"wildcarding": WILDCARDING, "exact": EXACT_MATCH, "ovs": OVS_DEFAULT}


# -- strategies -----------------------------------------------------------------

@st.composite
def prefix_constraints(draw):
    name = draw(st.sampled_from(FIELD_POOL))
    width = FIELDS[name].width
    plen = draw(st.integers(min_value=1, max_value=width))
    mask = ((1 << plen) - 1) << (width - plen)
    value = draw(st.integers(min_value=0, max_value=(1 << width) - 1)) & mask
    return name, value, mask


@st.composite
def rule_sets(draw, max_rules=6):
    n = draw(st.integers(min_value=1, max_value=max_rules))
    rules = []
    for index in range(n):
        constraints = {}
        for _ in range(draw(st.integers(min_value=1, max_value=3))):
            name, value, mask = draw(prefix_constraints())
            constraints[name] = (value, mask)
        action = ALLOW if draw(st.booleans()) else DENY
        priority = draw(st.integers(min_value=0, max_value=5))
        rules.append(FlowRule(Match(**constraints), action, priority=priority, name=f"r{index}"))
    if draw(st.booleans()):
        rules.append(FlowRule(Match.any(), DENY, priority=-1, name="default"))
    return rules


@st.composite
def flow_keys(draw):
    kwargs = {}
    for name in FIELD_POOL:
        width = FIELDS[name].width
        kwargs[name] = draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    return FlowKey(**kwargs)


@st.composite
def key_bursts(draw, max_size=25):
    """Key lists with deliberate duplicates (the coalescing case)."""
    keys = draw(st.lists(flow_keys(), min_size=1, max_size=max_size))
    for _ in range(draw(st.integers(min_value=0, max_value=5))):
        keys.append(keys[draw(st.integers(min_value=0, max_value=len(keys) - 1))])
    return keys


def assert_batch_equals_scalar(generator: MegaflowGenerator, keys, label=""):
    """generate_batch ≡ sequential generate, field for field, in order."""
    reference = MegaflowGenerator(generator.table, generator.strategy)
    scalar = [reference.generate(key) for key in keys]
    batched = generator.generate_batch(keys)
    assert len(batched) == len(scalar)
    for i, (a, b) in enumerate(zip(scalar, batched)):
        assert a.rules_examined == b.rules_examined, (label, i)
        assert a.rule is b.rule, (label, i)
        assert a.entry.mask == b.entry.mask, (label, i)
        assert a.entry.key == b.entry.key, (label, i)
        assert a.entry.action == b.entry.action, (label, i)
        assert a.entry.source_rule == b.entry.source_rule, (label, i)


# -- generate_batch ≡ generate --------------------------------------------------

@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(rules=rule_sets(), keys=key_bursts(), strategy=st.sampled_from(sorted(STRATEGIES)))
def test_generate_batch_equivalent(rules, keys, strategy):
    """Batched ≡ scalar for random tables/bursts, all three strategies."""
    generator = MegaflowGenerator(FlowTable(rules=rules), STRATEGIES[strategy])
    assert_batch_equals_scalar(generator, keys, strategy)
    # A second pass answers from the memo/trie — still identical.
    assert_batch_equals_scalar(generator, keys, f"{strategy}/memoised")


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(rules=rule_sets(), keys=key_bursts(max_size=12), extra=prefix_constraints())
def test_trie_invalidated_on_table_mutation(rules, keys, extra):
    """Rule insert/remove/flush each discard the trie (dicts-as-truth)."""
    table = FlowTable(rules=rules)
    generator = MegaflowGenerator(table)
    assert_batch_equals_scalar(generator, keys, "initial")

    name, value, mask = extra
    added = FlowRule(Match(**{name: (value, mask)}), ALLOW, priority=9, name="added")
    table.add(added)
    assert_batch_equals_scalar(generator, keys, "after add")

    table.remove(added)
    assert_batch_equals_scalar(generator, keys, "after remove")

    table.clear()
    assert_batch_equals_scalar(generator, keys, "after clear")


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(rules=rule_sets(), key=flow_keys(), copies=st.integers(min_value=2, max_value=30))
def test_duplicate_keys_coalesce(rules, key, copies):
    """A burst of one repeated key yields identical results per slot."""
    generator = MegaflowGenerator(FlowTable(rules=rules))
    results = generator.generate_batch([key] * copies)
    assert len(results) == copies
    first = generator.generate(key)
    for result in results:
        assert result.rules_examined == first.rules_examined
        assert result.rule is first.rule
        assert result.entry.mask == first.entry.mask
        assert result.entry.key == first.entry.key
        assert result.entry.action == first.entry.action


def test_empty_table_batch():
    """Table-miss leaves: wildcard mask, DENY, zero rules examined."""
    generator = MegaflowGenerator(FlowTable())
    keys = [FlowKey(ip_src=1), FlowKey(ip_src=2), FlowKey(ip_src=1)]
    for result in generator.generate_batch(keys):
        assert result.rule is None
        assert result.rules_examined == 0
        assert result.entry.action is DENY
        assert result.entry.source_rule == "<table-miss>"
        assert all(v == 0 for v in result.entry.mask.values)


# -- flow-limit behaviour under batched upcalls (serial/thread/process) ---------

def limit_table() -> FlowTable:
    table = FlowTable()
    table.add_rule(Match(tp_dst=(80, 0xFFFF)), ALLOW, priority=10, name="allow-80")
    table.add_rule(Match(ip_src=(0x0A000000, 0xFFFFFF00)), ALLOW, priority=5, name="allow-net")
    table.add_default_deny()
    return table


def limit_keys(n: int = 160) -> list[FlowKey]:
    # Enough distinct microflows to blow through a tiny flow limit, with
    # repeats so post-limit bursts mix hits, rejected misses, and dupes.
    keys = [
        FlowKey(ip_src=0x0A000000 | (i % 40), tp_src=1000 + i, tp_dst=80 if i % 3 else 443)
        for i in range(n)
    ]
    return keys + keys[: n // 4]


def build_limited(executor: str, batched: bool, limit: int) -> ShardedDatapath:
    config = DatapathConfig(
        microflow_capacity=0,
        executor=executor,
        max_megaflows=limit,
        batch_upcalls=batched,
    )
    return ShardedDatapath(limit_table(), config, n_shards=2)


@pytest.mark.parametrize("limit", [3, 10])
@pytest.mark.parametrize("executor", ["serial", "thread", "process"])
def test_flow_limit_batched_equals_scalar(executor, limit):
    """max_megaflows rejections are identical: scalar ≡ batched, any executor.

    The reference is the scalar serial engine; every (executor, batched)
    combination must reproduce its verdict transcript, per-shard stats
    (``installs``/``install_rejected``), and final entry set exactly.
    """
    keys = limit_keys()
    reference = build_limited("serial", batched=False, limit=limit)
    expected = reference.process_batch(keys, now=1.0)

    other = build_limited(executor, batched=True, limit=limit)
    try:
        got = other.process_batch(keys, now=1.0)
        label = f"{executor}/limit={limit}"
        assert got.shard_ids == expected.shard_ids, label
        assert got.mask_counts == expected.mask_counts, label
        assert got.probe_costs == expected.probe_costs, label
        assert got.upcalls == expected.upcalls, label
        for i, (a, b) in enumerate(zip(expected.verdicts, got.verdicts)):
            assert a.action == b.action, (label, i)
            assert a.path == b.path, (label, i)
            assert a.masks_inspected == b.masks_inspected, (label, i)
            assert a.rules_examined == b.rules_examined, (label, i)
            assert (a.installed is None) == (b.installed is None), (label, i)
        assert {(e.mask.values, e.key) for e in other.entries()} == {
            (e.mask.values, e.key) for e in reference.entries()
        }, label
        for shard_id, (ref_shard, got_shard) in enumerate(zip(reference.shards, other.shards)):
            assert got_shard.stats == ref_shard.stats, (label, shard_id)
            assert got_shard.stats.install_rejected == ref_shard.stats.install_rejected
        assert other.n_megaflows == reference.n_megaflows <= limit * 2, label
    finally:
        other.close()
