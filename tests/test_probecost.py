"""Probe-native cost plane tests: TSS identity, parity, and invariance.

The cost plane's contract (see ``repro/classifier/backend.py`` and
ROADMAP.md "Probe-native cost plane"):

* **TSS identity** — for the paper's backend, probes ≡ masks: per-packet
  ``probe_costs`` equal ``max(mask_counts, 1)`` on arbitrary traffic, the
  unit cost is 1.0, and ``expected_scan_cost() == max(n_masks, 1)``; the
  cost model's probe entry points price exactly like the mask formulas.
  This is what keeps the Table 1 / Fig 8-9 presets byte-identical.
* **Batch ≡ sequential probe accounting** — for *every* registered
  backend, the batched pipeline spends and reports the same probe stats
  as per-packet processing.
* **Hypervisor charge invariance** — attack units charged per core are
  identical whether packets are injected one by one or in batches, and a
  1-shard sharded host charges exactly what a plain-datapath host does.
"""

from __future__ import annotations

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.classifier.actions import ALLOW, DENY
from repro.classifier.backend import make_megaflow_backend, megaflow_backend_names
from repro.classifier.flowtable import FlowTable
from repro.classifier.rule import FlowRule, Match
from repro.core.detector import tse_mask_fraction, tse_scan_cost_dilution
from repro.core.migration import MigrationPolicy
from repro.core.mitigation import MFCGuard, MFCGuardConfig
from repro.core.tracegen import ColocatedTraceGenerator
from repro.core.usecases import SIPDP
from repro.netsim.cloud import ENVIRONMENTS, SYNTHETIC_ENV, Server
from repro.netsim.hypervisor import HypervisorHost
from repro.packet.fields import FIELDS, FlowKey
from repro.packet.headers import PROTO_TCP
from repro.switch.datapath import Datapath, DatapathConfig
from repro.switch.sharded import ShardedDatapath

BACKENDS = megaflow_backend_names()
FIELD_POOL = ("ip_src", "ip_dst", "tp_src", "tp_dst", "ip_proto")


# -- strategies (same family as tests/test_backend.py) ------------------------------

@st.composite
def prefix_constraints(draw):
    name = draw(st.sampled_from(FIELD_POOL))
    width = FIELDS[name].width
    plen = draw(st.integers(min_value=1, max_value=width))
    mask = ((1 << plen) - 1) << (width - plen)
    value = draw(st.integers(min_value=0, max_value=(1 << width) - 1)) & mask
    return name, value, mask


@st.composite
def rule_sets(draw, max_rules=6):
    n = draw(st.integers(min_value=1, max_value=max_rules))
    rules = []
    for index in range(n):
        constraints = {}
        for _ in range(draw(st.integers(min_value=1, max_value=3))):
            name, value, mask = draw(prefix_constraints())
            constraints[name] = (value, mask)
        action = ALLOW if draw(st.booleans()) else DENY
        priority = draw(st.integers(min_value=0, max_value=5))
        rules.append(FlowRule(Match(**constraints), action, priority=priority, name=f"r{index}"))
    rules.append(FlowRule(Match.any(), DENY, priority=-1, name="default"))
    return rules


def _mixed_traffic(seed: int, count: int) -> list[FlowKey]:
    rng = np.random.default_rng(seed)
    base = [
        FlowKey(
            ip_src=int(rng.integers(0, 1 << 32)),
            ip_dst=int(rng.integers(0, 1 << 32)),
            tp_src=int(rng.integers(0, 1 << 16)),
            tp_dst=int(rng.integers(0, 1 << 16)),
            ip_proto=6,
        )
        for _ in range(max(4, count // 8))
    ]
    return [
        base[int(rng.integers(0, len(base)))]
        if rng.random() < 0.55
        else FlowKey(
            ip_src=int(rng.integers(0, 1 << 32)),
            ip_dst=int(rng.integers(0, 1 << 32)),
            tp_src=int(rng.integers(0, 1 << 16)),
            tp_dst=int(rng.integers(0, 1 << 16)),
            ip_proto=6,
        )
        for _ in range(count)
    ]


def _fresh_rules(rules):
    return [FlowRule(r.match, r.action, priority=r.priority, name=r.name) for r in rules]


def _detonated(backend: str) -> Datapath:
    datapath = Datapath(
        SIPDP.build_table(),
        DatapathConfig(microflow_capacity=0, megaflow_backend=backend),
    )
    trace = ColocatedTraceGenerator(
        datapath.flow_table, base={"ip_proto": PROTO_TCP}
    ).generate()
    datapath.process_batch(list(trace.keys))
    return datapath


# -- TSS identity: probes ≡ masks --------------------------------------------------

@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    rules=rule_sets(),
    seed=st.integers(min_value=0, max_value=2**31),
    batch_size=st.integers(min_value=1, max_value=17),
)
def test_tss_probe_costs_equal_mask_counts(rules, seed, batch_size):
    """On arbitrary traffic, the TSS probe plane is the mask plane."""
    datapath = Datapath(
        FlowTable(rules=_fresh_rules(rules)),
        DatapathConfig(microflow_capacity=0, megaflow_backend="tss"),
    )
    keys = _mixed_traffic(seed, 50)
    for start in range(0, len(keys), batch_size):
        batch = datapath.process_batch(keys[start : start + batch_size], now=1.0)
        assert list(batch.probe_costs) == [float(max(m, 1)) for m in batch.mask_counts]
        assert datapath.megaflows.expected_scan_cost() == float(max(datapath.n_masks, 1))
    snapshot = datapath.megaflows.probe_cost_snapshot()
    assert snapshot.unit_cost == 1.0
    assert snapshot.scan_cost == float(max(snapshot.n_masks, 1))


def test_cost_model_mask_entry_points_are_the_probe_special_case():
    model = SYNTHETIC_ENV.cost_model
    for masks in (1, 2, 17, 516, 8209):
        assert model.victim_cost_units(masks) == model.victim_cost_units_probes(float(masks))
        assert model.victim_gbps(masks) == model.victim_gbps_probes(float(masks))
        for upcall in (False, True):
            assert model.attack_cost_units(masks, upcall) == model.attack_cost_units_probes(
                float(masks), upcall
            )
    counts = [0, 1, 5, 5, 17, 516, 516, 516]
    assert model.attack_units_batch([float(max(m, 1)) for m in counts], 2) == (
        model.attack_units_batch(counts, 2)
    )


# -- batch ≡ sequential probe accounting, every backend ----------------------------

@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    rules=rule_sets(),
    seed=st.integers(min_value=0, max_value=2**31),
    batch_size=st.integers(min_value=1, max_value=17),
)
def test_batch_probe_accounting_equals_sequential(rules, seed, batch_size):
    """stats_scans / stats_scan_probes agree between the two pipelines."""
    keys = _mixed_traffic(seed, 40)
    for name in BACKENDS:
        seq = Datapath(
            FlowTable(rules=_fresh_rules(rules)),
            DatapathConfig(microflow_capacity=0, megaflow_backend=name),
        )
        bat = Datapath(
            FlowTable(rules=_fresh_rules(rules)),
            DatapathConfig(microflow_capacity=0, megaflow_backend=name),
        )
        seq_probes = [seq.process(k, now=1.0).masks_inspected for k in keys]
        bat_probes = []
        for start in range(0, len(keys), batch_size):
            batch = bat.process_batch(keys[start : start + batch_size], now=1.0)
            bat_probes.extend(v.masks_inspected for v in batch.verdicts)
        assert seq_probes == bat_probes, name
        assert seq.megaflows.stats_scans == bat.megaflows.stats_scans, name
        assert seq.megaflows.stats_scan_probes == bat.megaflows.stats_scan_probes, name


@pytest.mark.parametrize("name", BACKENDS)
def test_scan_stats_feed_the_snapshot(name):
    datapath = _detonated(name)
    cache = datapath.megaflows
    snapshot = cache.probe_cost_snapshot()
    assert snapshot.scans == cache.stats_scans > 0
    assert snapshot.probes_total == cache.stats_scan_probes > 0
    assert snapshot.probes_per_scan == pytest.approx(
        cache.stats_scan_probes / cache.stats_scans
    )
    assert snapshot.scan_cost >= 1.0
    assert make_megaflow_backend(name).probe_cost_snapshot().scans == 0


# -- hypervisor charge invariance --------------------------------------------------

def _attack_keys() -> list[FlowKey]:
    table = SIPDP.build_table()
    return list(
        ColocatedTraceGenerator(table, base={"ip_proto": PROTO_TCP}).generate().keys
    )


def _make_host(n_shards: int | None, backend: str = "tss") -> HypervisorHost:
    table = SIPDP.build_table()
    config = DatapathConfig(microflow_capacity=0, megaflow_backend=backend)
    if n_shards is None:
        datapath = Datapath(table, config)
    else:
        datapath = ShardedDatapath(table, config, n_shards=n_shards)
    return HypervisorHost(datapath, SYNTHETIC_ENV.cost_model)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("n_shards", [None, 1, 4])
def test_hypervisor_charges_batch_equals_sequential(n_shards, backend):
    """Units charged per core match between batched and per-packet injection."""
    keys = _attack_keys()
    batched = _make_host(n_shards, backend)
    sequential = _make_host(n_shards, backend)
    for start in range(0, len(keys), 32):
        batched.inject_attack_batch(keys[start : start + 32], now=1.0)
    for key in keys:
        sequential.inject_attack(key, now=1.0)
    assert batched._attack_units == pytest.approx(sequential._attack_units)
    assert batched._upcalls == sequential._upcalls


def test_hypervisor_charges_shard_count_invariant_at_one_shard():
    """A 1-shard sharded host charges exactly what a plain host does."""
    keys = _attack_keys()
    plain = _make_host(None)
    one_shard = _make_host(1)
    plain.inject_attack_batch(keys, now=1.0)
    one_shard.inject_attack_batch(keys, now=1.0)
    assert plain._attack_units == one_shard._attack_units
    plain.tick(1.0, 0.1)
    one_shard.tick(1.0, 0.1)
    assert plain.cpu_load_fraction == one_shard.cpu_load_fraction
    assert plain.per_core_load == one_shard.per_core_load


# -- the probe plane sees the grouped defense --------------------------------------

def test_tuplechain_scan_cost_stays_bounded_after_detonation():
    tss = _detonated("tss")
    chain = _detonated("tuplechain")
    assert tss.n_masks == chain.n_masks > 500
    assert tss.scan_cost == float(tss.n_masks)
    assert chain.scan_cost < tss.scan_cost / 4
    # Victim pricing through the hypervisor's unit-cost mix follows suit.
    model = SYNTHETIC_ENV.cost_model
    assert model.victim_cost_units_probes(chain.scan_cost) < (
        model.victim_cost_units_probes(tss.scan_cost) / 4
    )


def test_detector_dilution_is_backend_meaningful():
    """Mask fraction is backend-blind; scan-cost dilution is not."""
    tss = _detonated("tss")
    chain = _detonated("tuplechain")
    table = tss.flow_table
    assert tse_mask_fraction(tss.megaflows, table) == pytest.approx(
        tse_mask_fraction(chain.megaflows, chain.flow_table)
    )
    tss_dilution = tse_scan_cost_dilution(tss.megaflows, table)
    chain_dilution = tse_scan_cost_dilution(chain.megaflows, chain.flow_table)
    assert tss_dilution > 10  # the staircase multiplied TSS scan cost
    assert 1.0 <= chain_dilution < tss_dilution / 4  # chains absorbed it
    # Clean cache: nothing to dilute.
    empty = Datapath(SIPDP.build_table(), DatapathConfig(microflow_capacity=0))
    assert tse_scan_cost_dilution(empty.megaflows, empty.flow_table) == pytest.approx(1.0)
    assert tse_mask_fraction(empty.megaflows, empty.flow_table) == 0.0


def test_mfcguard_probe_threshold_is_chain_aware():
    """The guard cleans TSS but stands down on a cheap-to-scan explosion."""
    for name, expect_clean in (("tss", True), ("tuplechain", False)):
        datapath = _detonated(name)
        guard = MFCGuard(
            datapath,
            MFCGuardConfig(mask_threshold=100, probe_cost_threshold=200.0),
        )
        report = guard.run(now=1.0)
        assert report.ran
        assert report.masks_before > 500
        if expect_clean:
            assert report.entries_deleted > 0
            assert not report.stood_down_by_probe_cost
            assert report.probe_cost_before == float(report.masks_before)
        else:
            assert report.entries_deleted == 0
            assert report.stood_down_by_probe_cost
            assert report.probe_cost_before < 200.0


def test_mfcguard_without_probe_threshold_keeps_paper_behaviour():
    datapath = _detonated("tuplechain")
    guard = MFCGuard(datapath, MFCGuardConfig(mask_threshold=100))
    report = guard.run(now=1.0)
    assert report.entries_deleted > 0
    assert not report.stood_down_by_probe_cost


# -- migration stays out of the paper presets --------------------------------------

def test_presets_carry_no_migration_policy():
    """``EnvironmentProfile.migration_policy`` defaults to ``None`` in
    every paper preset: the Table 1 / Fig 8-9 environments build no
    migrator and their datapath knobs are untouched by the new field."""
    for name, environment in ENVIRONMENTS.items():
        assert environment.migration_policy is None, name
    server = Server("preset-probe", SYNTHETIC_ENV)
    try:
        assert server.host.migrator is None
    finally:
        server.close()


def test_inert_migration_policy_is_float_identical():
    """A migrator whose threshold never trips is charge-invisible: the
    victim time series matches the no-migrator run float for float."""
    from repro.experiments.migrationsweep import run_policy_cell

    window = dict(
        duration=10.0, attack_start=2.0, attack_stop=8.0, attack_pps=600.0
    )
    bare = run_policy_cell("none", **window)
    inert = run_policy_cell(
        "migration",
        migration_policy=MigrationPolicy(cost_threshold=1e12),
        **window,
    )
    assert inert["series"] == bare["series"]
    assert inert["swaps"] == 0
    assert inert["final_backend"] == "tss"
