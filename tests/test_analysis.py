"""Unit tests for the analytic tuple-space model (Eq. 1/2, §11.3)."""

import pytest

from repro.core.analysis import (
    AclSpec,
    attainable_entries,
    attainable_masks,
    entry_census,
    eq1_probability,
    expected_entries,
    expected_masks,
    expected_masks_curve,
    mask_census,
    spawn_probability,
)
from repro.exceptions import ExperimentError


class TestSpawnProbability:
    def test_paper_example(self):
        """§6.1: entry #2 of Fig. 3 has p = 2^2 / 2^3 = 0.5."""
        assert spawn_probability(2, 3) == 0.5

    def test_exact_entry(self):
        assert spawn_probability(0, 16) == 2.0**-16

    def test_fully_wildcarded(self):
        assert spawn_probability(8, 8) == 1.0

    def test_bounds_checked(self):
        with pytest.raises(ExperimentError):
            spawn_probability(9, 8)
        with pytest.raises(ExperimentError):
            spawn_probability(-1, 8)


class TestEq1:
    def test_matches_direct_formula(self):
        p = spawn_probability(2, 3)
        direct = 1 - (1 - p) ** 10
        assert eq1_probability(2, 3, 10) == pytest.approx(direct, rel=1e-9)

    def test_zero_packets(self):
        assert eq1_probability(2, 3, 0) == 0.0

    def test_saturates(self):
        assert eq1_probability(2, 3, 100000) == pytest.approx(1.0)

    def test_tiny_probability_stable(self):
        # 2^-64 per packet, 1000 packets: ~1000 * 2^-64, no underflow to 0.
        value = eq1_probability(0, 64, 1000)
        assert value == pytest.approx(1000 * 2.0**-64, rel=1e-3)

    def test_negative_n_rejected(self):
        with pytest.raises(ExperimentError):
            eq1_probability(1, 3, -1)


class TestAttainable:
    def test_paper_values(self):
        assert attainable_masks([16]) == 16          # Dp
        assert attainable_masks([3, 4]) == 13        # Fig. 4: 3*4+1
        assert attainable_masks([16, 16]) == 257     # SpDp
        assert attainable_masks([16, 32]) == 513     # SipDp
        assert attainable_masks([16, 32, 16]) == 8209  # Fig. 6 "~8200"

    def test_entries_exceed_masks(self):
        for widths in ([16], [3, 4], [16, 32, 16]):
            assert attainable_entries(widths) >= attainable_masks(widths)

    def test_fig4_entries(self):
        # Fig. 5 shows 16 entries: 12 deny + 1 + 3 allow.
        assert attainable_entries([3, 4]) == 16

    def test_spec_validation(self):
        with pytest.raises(ExperimentError):
            AclSpec(())
        with pytest.raises(ExperimentError):
            AclSpec((0,))


class TestCensus:
    def test_mask_census_totals(self):
        for widths in ([16], [3, 4], [16, 32]):
            census = mask_census(widths)
            assert sum(census.values()) == attainable_masks(widths)

    def test_entry_census_totals(self):
        for widths in ([16], [3, 4], [16, 32]):
            census = entry_census(widths)
            assert sum(census.values()) == attainable_entries(widths)

    def test_single_field_census_structure(self):
        # w-bit field: one deny entry per prefix length l (wildcards w-l),
        # plus the exact allow entry (k=0 has two entries: allow + l=w deny).
        census = entry_census([4])
        assert census == {0: 2, 1: 1, 2: 1, 3: 1}

    def test_wildcard_counts_bounded(self):
        spec = AclSpec((16, 32, 16))
        assert all(0 <= k < spec.total_bits for k in mask_census(spec))


class TestExpectedMasks:
    def test_methods_agree(self):
        for widths in ([16], [16, 16], [16, 32, 16]):
            for n in (10, 1000, 50000):
                census = expected_masks(widths, n, method="census")
                enum = expected_masks(widths, n, method="enumerate")
                assert census == pytest.approx(enum, rel=1e-9), (widths, n)

    def test_paper_fig9b_values(self):
        """Fig. 9b at 50k packets: Dp~16, SpDp~121, SipDp~122, SipSpDp~581."""
        assert expected_masks([16], 50000) == pytest.approx(16, abs=1.0)
        assert expected_masks([16, 16], 50000) == pytest.approx(121, abs=3.0)
        assert expected_masks([16, 32], 50000) == pytest.approx(122, abs=3.0)
        assert expected_masks([16, 32, 16], 50000) == pytest.approx(581, abs=6.0)

    def test_spdp_sipdp_negligible_difference(self):
        """§6.2: 'the difference between SipDp and SpDp was negligible'."""
        for n in (1000, 50000):
            spdp = expected_masks([16, 16], n)
            sipdp = expected_masks([16, 32], n)
            assert abs(spdp - sipdp) / spdp < 0.02

    def test_monotone_in_n(self):
        values = expected_masks_curve([16, 32], [10, 100, 1000, 10000])
        assert values == sorted(values)

    def test_bounded_by_attainable(self):
        for widths in ([16], [16, 32, 16]):
            assert expected_masks(widths, 10**7) <= attainable_masks(widths)

    def test_zero_packets(self):
        assert expected_masks([16], 0) == 0.0

    def test_unknown_method(self):
        with pytest.raises(ExperimentError):
            expected_masks([16], 10, method="magic")

    def test_negative_n(self):
        with pytest.raises(ExperimentError):
            expected_masks([16], -1)


class TestExpectedEntries:
    def test_eq2_literal(self):
        """Eq. 2 over the entry census, computed independently here."""
        widths = [3, 4]
        n = 500
        census = entry_census(widths)
        total_bits = sum(widths)
        by_hand = sum(
            count * (1 - (1 - 2.0 ** (k - total_bits)) ** n)
            for k, count in census.items()
        )
        assert expected_entries(widths, n) == pytest.approx(by_hand, rel=1e-9)

    def test_entries_at_least_masks(self):
        for n in (100, 10000):
            assert expected_entries([16, 32], n) >= expected_masks([16, 32], n) - 1e-9


class TestMonteCarloAgreement:
    """The analytic expectation must match the real cache (seeded)."""

    @pytest.mark.parametrize("widths,use_fields", [
        ((16,), ("tp_dst",)),
        ((16, 32), ("tp_dst", "ip_src")),
    ])
    def test_expectation_vs_simulation(self, widths, use_fields):
        from repro.classifier.slowpath import WILDCARDING, MegaflowGenerator
        from repro.core.general import GeneralTraceGenerator
        from repro.core.usecases import SIPDP, DP

        use_case = DP if len(widths) == 1 else SIPDP
        n = 2000
        runs = 5
        total = 0.0
        table = use_case.build_table()
        for run in range(runs):
            generator = MegaflowGenerator(table, WILDCARDING)
            source = GeneralTraceGenerator(
                fields=use_fields, base={"ip_proto": 6}, seed=run
            )
            masks = {generator.generate(k).entry.mask for k in source.keys(n)}
            total += len(masks)
        measured = total / runs
        expected = expected_masks(widths, n)
        assert measured == pytest.approx(expected, rel=0.15)
