"""Live RSS rebalancing: salted hashes, re-map migration, the controller.

The re-map invariants under test (ROADMAP item 5):

* ``salt=0`` is bit-for-bit the historical un-salted hash everywhere
  (scalar, columns, uniform), so every paper preset is byte-identical;
* the vectorised and scalar salted hashes agree for every salt — the
  shared differential that keeps the fleet's column kernel honest after
  a re-key;
* a re-key genuinely *scatters*: FNV-1a's low bits are affine in the
  salt, so without the salted path's finalizer a ground trace would move
  between queues as a block (the regression test that pins the fix);
* re-maps preserve the aggregate ``(mask, masked key)`` union, carry the
  §8 dead-entry records along, and are no-ops on one shard — under the
  serial, thread and process executors;
* the controller re-arms on cooldown expiry even when the skew never
  collapses — the discipline that keeps the defender playing against an
  attacker who re-concentrates after every re-map.
"""

from __future__ import annotations

from dataclasses import replace
from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.classifier.flowtable import FlowTable
from repro.core.rebalance import RebalanceController, RebalancePolicy
from repro.core.tracegen import ColocatedTraceGenerator
from repro.core.usecases import SIPDP
from repro.exceptions import ExperimentError, SwitchError
from repro.netsim.cloud import MULTIQUEUE_ENV, Server
from repro.packet.fields import FlowKey
from repro.packet.headers import PROTO_TCP
from repro.switch.datapath import DatapathConfig
from repro.switch.dpctl import show
from repro.switch.rss import (
    RSS_FIELDS,
    RetaDispatcher,
    RssDispatcher,
    five_tuple_hash,
    five_tuple_hash_columns,
    uniform_key_hash,
)
from repro.switch.sharded import ShardedDatapath

SALTS = (1, 0x9E3779B9, 0xDEADBEEF, 0xFFFFFFFF)


def some_keys(n: int = 64, seed: int = 7) -> list[FlowKey]:
    rng = np.random.default_rng(seed)
    return [
        FlowKey(
            ip_src=int(rng.integers(0, 1 << 32)),
            ip_dst=int(rng.integers(0, 1 << 32)),
            tp_src=int(rng.integers(0, 1 << 16)),
            tp_dst=int(rng.integers(0, 1 << 16)),
            ip_proto=PROTO_TCP,
        )
        for _ in range(n)
    ]


def detonated(n_shards: int, executor: str = "serial") -> tuple[ShardedDatapath, list[FlowKey]]:
    """A sharded SipDp datapath with the §5 staircase installed."""
    table = SIPDP.build_table()
    trace = ColocatedTraceGenerator(table, base={"ip_proto": PROTO_TCP}).generate()
    keys = list(trace.keys)
    datapath = ShardedDatapath(
        table,
        DatapathConfig(microflow_capacity=0, executor=executor),
        n_shards=n_shards,
    )
    datapath.process_batch(keys)
    return datapath, keys


def entry_union(datapath: ShardedDatapath) -> set:
    return {
        (e.mask.values, e.key)
        for shard in datapath.shards
        for e in shard.megaflows.entries()
    }


class TestSaltedHash:
    def test_salt_zero_is_the_historical_hash(self):
        """Golden values: un-salted hashing is frozen (paper presets)."""
        k1 = FlowKey(ip_src=0x0A000001, ip_dst=0x0A000002, tp_src=1234, tp_dst=80,
                     ip_proto=6)
        k2 = FlowKey(ip_src=0xC0A80101, ip_dst=0x08080808, tp_src=53, tp_dst=443,
                     ip_proto=17)
        assert five_tuple_hash(k1) == 0x86790BBE
        assert five_tuple_hash(k2) == 0x8C939033
        assert five_tuple_hash(k1, 0) == five_tuple_hash(k1)
        assert uniform_key_hash(k1, 0) == uniform_key_hash(k1)

    def test_columns_match_scalar_for_every_salt(self):
        """The shared differential: vectorised ≡ scalar, salted or not."""
        keys = some_keys()
        columns = {
            name: np.asarray([key[name] for key in keys], dtype=np.int64)
            for name in RSS_FIELDS
        }
        for salt in (0, *SALTS):
            hashes = five_tuple_hash_columns(columns, salt=salt)
            assert [int(h) for h in hashes] == [
                five_tuple_hash(key, salt) for key in keys
            ]

    def test_salts_decorrelate(self):
        """Different salts give different placements for most keys."""
        keys = some_keys(256)
        for hash_fn in (five_tuple_hash, uniform_key_hash):
            base = [hash_fn(k, SALTS[0]) % 4 for k in keys]
            other = [hash_fn(k, SALTS[1]) % 4 for k in keys]
            moved = sum(1 for a, b in zip(base, other) if a != b)
            assert moved > len(keys) // 2, hash_fn.__name__

    def test_rekey_scatters_a_ground_trace(self):
        """A set ground onto one queue must not move as a block.

        FNV-1a's low bits are affine over GF(2) in the initial state, so
        for fixed-length keys a bare salted variant differs from the
        un-salted hash by a *constant* XOR in the bits a queue index is
        taken from — a re-key would relocate a whole ground trace to one
        new queue, concentration intact.  The salted path's finalizer is
        what breaks this; here is the regression test.
        """
        ground = [k for k in some_keys(2048, seed=3) if five_tuple_hash(k) % 4 == 0]
        assert len(ground) > 300
        for salt in SALTS:
            queues = {five_tuple_hash(k, salt) % 4 for k in ground}
            assert len(queues) == 4, f"salt {salt:#x} moved the trace as a block"

    @given(
        ip_src=st.integers(0, 0xFFFFFFFF),
        ip_dst=st.integers(0, 0xFFFFFFFF),
        ip_proto=st.integers(0, 0xFF),
        tp_src=st.integers(0, 0xFFFF),
        tp_dst=st.integers(0, 0xFFFF),
        salt=st.integers(0, 0xFFFFFFFF),
    )
    def test_columns_scalar_differential_property(
        self, ip_src, ip_dst, ip_proto, tp_src, tp_dst, salt
    ):
        key = FlowKey(
            ip_src=ip_src, ip_dst=ip_dst, ip_proto=ip_proto,
            tp_src=tp_src, tp_dst=tp_dst,
        )
        columns = {
            name: np.asarray([key[name]], dtype=np.int64) for name in RSS_FIELDS
        }
        assert int(five_tuple_hash_columns(columns, salt=salt)[0]) == five_tuple_hash(
            key, salt
        )


class TestRetaDispatcher:
    def test_default_placement_matches_plain_rss(self):
        plain = RssDispatcher(4)
        reta = RetaDispatcher(4)
        for key in some_keys():
            assert reta.queue_of(key) == plain.queue_of(key)

    def test_salt_and_reta_validation(self):
        with pytest.raises(SwitchError):
            RetaDispatcher(4, salt=-1)
        with pytest.raises(SwitchError):
            RetaDispatcher(4, salt=1 << 32)
        with pytest.raises(SwitchError):
            RetaDispatcher(4, reta=())
        with pytest.raises(SwitchError):
            RetaDispatcher(4, reta=(0, 1, 4))

    def test_with_salt_and_with_reta_route_differently(self):
        base = RetaDispatcher(4)
        rekeyed = base.with_salt(0x9E3779B9)
        rotated = base.with_reta(tuple((q + 1) % 4 for q in base.reta))
        keys = some_keys(128)
        assert any(base.queue_of(k) != rekeyed.queue_of(k) for k in keys)
        for key in keys:
            assert rotated.queue_of(key) == (base.queue_of(key) + 1) % 4
        assert "salt=0x9e3779b9" in repr(rekeyed)


@pytest.mark.parametrize("executor", ["serial", "thread", "process"])
class TestRemapMigration:
    def test_union_invariant_and_idempotent(self, executor):
        datapath, keys = detonated(4, executor=executor)
        try:
            before = entry_union(datapath)
            rekeyed = RetaDispatcher(4, five_tuple_hash, salt=SALTS[1])
            status = datapath.rebalance(rekeyed)
            assert status["remaps"] == 1
            assert status["entries_moved"] > 0
            assert entry_union(datapath) == before
            # Every entry sits at its masked key's home now.
            for shard_id, shard in enumerate(datapath.shards):
                for entry in shard.megaflows.entries():
                    assert rekeyed.queue_of(FlowKey.from_values(entry.key)) == shard_id
            # Re-mapping onto the same dispatcher moves nothing more.
            again = datapath.rebalance(rekeyed.with_salt(SALTS[1]))
            assert again["entries_moved"] == status["entries_moved"]
        finally:
            datapath.close()

    def test_one_shard_remap_is_a_noop(self, executor):
        datapath, _keys = detonated(1, executor=executor)
        try:
            before = entry_union(datapath)
            status = datapath.rebalance(RetaDispatcher(1, five_tuple_hash, salt=5))
            assert status["entries_moved"] == 0
            assert entry_union(datapath) == before
        finally:
            datapath.close()


class TestRemapRaces:
    def test_flow_table_delta_between_remaps(self):
        """A policy change mid-game flushes cleanly; re-maps keep working."""
        datapath, keys = detonated(2)
        datapath.rebalance(RetaDispatcher(2, five_tuple_hash, salt=SALTS[0]))
        assert datapath.n_megaflows > 0
        # The tenant pushes a rule update: every shard flushes, and the
        # re-mapped dispatcher stays installed.
        from repro.classifier.actions import DENY
        from repro.classifier.rule import Match

        datapath.flow_table.add_rule(
            Match(tp_dst=(9999, 0xFFFF)), DENY, priority=2000, name="late"
        )
        assert datapath.n_megaflows == 0
        assert getattr(datapath.rss, "salt", 0) == SALTS[0]
        # Traffic re-detonates under the new table; the next re-map still
        # preserves the refilled union.
        datapath.process_batch(keys)
        refilled = entry_union(datapath)
        assert refilled
        datapath.rebalance(datapath.rss.with_salt(SALTS[1]))
        assert entry_union(datapath) == refilled

    def test_guard_sweep_concurrent_with_rekey(self):
        """MFCGuard's dead-entry records ride along with a re-map."""
        from repro.core.mitigation import MFCGuard, MFCGuardConfig

        datapath, keys = detonated(2)
        guard = MFCGuard(
            datapath, MFCGuardConfig(mask_threshold=50, cpu_threshold_pct=900)
        )
        report = guard.run(now=10.0)
        assert report.entries_deleted > 0
        dead_before = {
            record for shard in datapath.shards for record in shard._dead_entries
        }
        assert dead_before
        datapath.rebalance(RetaDispatcher(2, five_tuple_hash, salt=SALTS[2]))
        # Union preserved, and every record lives at its masked key's home.
        dead_after = {}
        for shard_id, shard in enumerate(datapath.shards):
            for mask, key in shard._dead_entries:
                dead_after[(mask, key)] = shard_id
        assert set(dead_after) == dead_before
        for (_mask, key), shard_id in dead_after.items():
            assert datapath.shard_of(FlowKey.from_values(key)) == shard_id
        # The §8 quirk survives the move: replaying the killed flows is
        # suppressed on the new home shard, not reinstalled.
        suppressed_before = datapath.stats.dead_entry_suppressed
        datapath.process_batch(keys)
        assert datapath.stats.dead_entry_suppressed > suppressed_before

    def test_shard_count_mismatch_rejected(self):
        datapath, _keys = detonated(2)
        with pytest.raises(SwitchError):
            datapath.rebalance(RetaDispatcher(4, five_tuple_hash, salt=1))


class FakeDatapath:
    """Drives the controller with scripted per-shard costs."""

    def __init__(self, costs, n_shards=4):
        self.costs = list(costs)
        self.n_shards = n_shards
        self.rss = RssDispatcher(n_shards)
        self.remap_log: list[int] = []
        self._moved = 0

    def core_report(self):
        return [SimpleNamespace(scan_cost=c) for c in self.costs]

    def rebalance(self, dispatcher):
        self.rss = dispatcher
        self._moved += 100
        self.remap_log.append(getattr(dispatcher, "salt", 0))
        return {"entries_moved": self._moved, "salt": getattr(dispatcher, "salt", 0)}


class TestRebalanceController:
    def test_skew_and_floor_gate_the_trigger(self):
        policy = RebalancePolicy(skew_threshold=3.0, cost_floor=64.0)
        # Benign: high skew, tiny cost — must not churn.
        idle = RebalanceController(FakeDatapath([10, 1, 1, 1]), policy)
        assert not idle.run(now=1.0).remapped
        # Even load: big cost, no skew.
        even = RebalanceController(FakeDatapath([500, 480, 510, 505]), policy)
        assert not even.run(now=1.0).remapped
        # The attack signature: one hot shard past the floor.
        hot = RebalanceController(FakeDatapath([2000, 20, 25, 15]), policy)
        report = hot.run(now=1.0)
        assert report.remapped and report.salt != 0
        assert report.skew > 3.0
        assert report.entries_moved == 100

    def test_cooldown_blocks_then_time_rearms(self):
        """The defender gets a move every round: renewed concentration
        after the cooldown re-triggers even though skew never collapsed
        (a skew-collapse-only re-arm would disarm the defender forever
        against an attacker that re-grinds immediately)."""
        datapath = FakeDatapath([2000, 20, 25, 15])
        ctrl = RebalanceController(
            datapath, RebalancePolicy(skew_threshold=3.0, cooldown=5.0)
        )
        assert ctrl.run(now=1.0).remapped
        # Skew stays high (the attacker re-concentrated instantly) — the
        # cooldown holds the defender back...
        assert not ctrl.run(now=3.0).remapped
        # ...but its expiry re-arms the trigger unconditionally.
        assert ctrl.run(now=6.5).remapped
        assert ctrl.remaps_completed == 2
        assert len(set(datapath.remap_log)) == 2, "each re-key gets a fresh salt"

    def test_hysteresis_rearms_early_on_collapse(self):
        datapath = FakeDatapath([2000, 20, 25, 15])
        ctrl = RebalanceController(
            datapath,
            RebalancePolicy(skew_threshold=3.0, hysteresis=0.5, cooldown=5.0),
        )
        assert ctrl.run(now=1.0).remapped
        assert not ctrl._armed
        # The re-map dispersed the load: skew collapses, trigger re-arms
        # well before the cooldown expires (the cooldown still gates the
        # next actual re-map).
        datapath.costs = [500, 480, 510, 505]
        assert not ctrl.run(now=2.0).remapped
        assert ctrl._armed

    def test_tick_cadence(self):
        ctrl = RebalanceController(
            FakeDatapath([1, 1, 1, 1]), RebalancePolicy(period=0.5)
        )
        assert not ctrl.tick(0.1).ran
        assert ctrl.tick(0.6).ran
        assert not ctrl.tick(0.7).ran

    def test_single_shard_never_remaps(self):
        ctrl = RebalanceController(FakeDatapath([5000], n_shards=1))
        assert not ctrl.run(now=1.0).remapped

    def test_reta_mode_rotates(self):
        datapath = FakeDatapath([2000, 20, 25, 15])
        ctrl = RebalanceController(
            datapath, RebalancePolicy(skew_threshold=3.0, mode="reta")
        )
        assert ctrl.run(now=1.0).remapped
        assert isinstance(datapath.rss, RetaDispatcher)
        assert datapath.rss.salt == 0
        assert datapath.rss.reta == tuple((i + 1) % 4 for i in RetaDispatcher(4).reta)

    def test_policy_validation(self):
        for bad in (
            dict(skew_threshold=0.5),
            dict(cost_floor=-1),
            dict(hysteresis=0),
            dict(hysteresis=1.5),
            dict(cooldown=-1),
            dict(period=0),
            dict(mode="shuffle"),
        ):
            with pytest.raises(ExperimentError):
                RebalancePolicy(**bad)


class TestDpctlAndWiring:
    def test_show_renders_the_rebalance_line(self):
        datapath, _keys = detonated(2)
        assert "rebalance: idle salt:0x0" in show(datapath)
        datapath.rebalance(RetaDispatcher(2, five_tuple_hash, salt=SALTS[1]))
        rendered = show(datapath)
        assert "rebalance: remaps:1" in rendered
        assert f"salt:{SALTS[1]:#x}" in rendered

    def test_cloud_profile_wires_the_controller(self):
        policy = RebalancePolicy(skew_threshold=2.0)
        armed = Server("s1", replace(MULTIQUEUE_ENV, rebalance_policy=policy))
        assert armed.host.rebalancer is not None
        assert armed.host.rebalancer.policy is policy
        # Without a policy (every paper preset) nothing is wired.
        assert Server("s2", MULTIQUEUE_ENV).host.rebalancer is None
        # A single-PMD profile has nothing to re-map.
        single = replace(
            MULTIQUEUE_ENV, n_pmd=1, rebalance_policy=policy
        )
        assert Server("s3", single).host.rebalancer is None

    def test_game_recovers_the_victim_and_tracks_its_home(self):
        """A miniature rsssweep round-trip: the defender re-maps and the
        hypervisor re-pins the victim's home shards to the new placement."""
        from repro.experiments.rsssweep import run_policy_cell

        cell = run_policy_cell(
            "rebalance",
            use_case_name="SipDp",
            duration=10.0,
            attack_start=2.0,
            attack_stop=9.0,
            round_period=4.0,
            rebalance_policy=RebalancePolicy(
                skew_threshold=1.5, cost_floor=32.0, cooldown=1.0, period=0.25
            ),
        )
        assert cell["remaps"] >= 1
        assert cell["entries_moved"] > 0
        assert cell["final_salt"] != 0
        # The attacker's later grinds saw the victim's *recomputed* home
        # (a stale home would leave the retarget report aiming at queue 0
        # forever while the victim had moved).
        assert cell["rounds"] >= 2
