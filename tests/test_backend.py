"""Megaflow-backend layer tests: protocol, registry, and TSS ≡ TupleChain.

The backend seam's contract (see ``repro/classifier/backend.py``):

* every registered backend satisfies the :class:`MegaflowBackend`
  protocol — the exact surface the datapath, revalidator, dpctl and
  MFCGuard drive;
* backends are **verdict-for-verdict and action-identical** on any
  traffic: same actions, same pipeline paths, same installed entry and
  mask sets, same upcall/install statistics, same eviction outcomes —
  only ``masks_inspected`` differs, being reported in backend-native
  probe units (mask tables scanned vs chain hash probes);
* batch ≡ sequential holds *per backend*;
* the grouped backend's probe units stay bounded by the group/chain
  structure while TSS's grow with the mask count — the defense property.
"""

from __future__ import annotations

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.classifier.actions import ALLOW, DENY
from repro.classifier.backend import (
    MegaflowBackend,
    MegaflowStore,
    make_megaflow_backend,
    megaflow_backend_names,
)
from repro.classifier.flowtable import FlowTable
from repro.classifier.rule import FlowRule, Match
from repro.classifier.slowpath import MegaflowGenerator
from repro.classifier.tss import TupleSpaceSearch
from repro.classifier.tuplechain import TupleChainSearch
from repro.core.tracegen import ColocatedTraceGenerator
from repro.core.usecases import SIPDP
from repro.exceptions import CacheInvariantError, ClassifierError
from repro.packet.fields import FIELDS, FlowKey
from repro.packet.headers import PROTO_TCP
from repro.switch.datapath import Datapath, DatapathConfig

# Derived from the registry: a newly registered backend automatically
# inherits the protocol/differential coverage (differentials compare each
# backend against "tss", the reference implementation).
BACKENDS = megaflow_backend_names()
FIELD_POOL = ("ip_src", "ip_dst", "tp_src", "tp_dst", "ip_proto")


# -- strategies (same family as tests/test_batch.py) ------------------------------

@st.composite
def prefix_constraints(draw):
    name = draw(st.sampled_from(FIELD_POOL))
    width = FIELDS[name].width
    plen = draw(st.integers(min_value=1, max_value=width))
    mask = ((1 << plen) - 1) << (width - plen)
    value = draw(st.integers(min_value=0, max_value=(1 << width) - 1)) & mask
    return name, value, mask


@st.composite
def rule_sets(draw, max_rules=6):
    n = draw(st.integers(min_value=1, max_value=max_rules))
    rules = []
    for index in range(n):
        constraints = {}
        for _ in range(draw(st.integers(min_value=1, max_value=3))):
            name, value, mask = draw(prefix_constraints())
            constraints[name] = (value, mask)
        action = ALLOW if draw(st.booleans()) else DENY
        priority = draw(st.integers(min_value=0, max_value=5))
        rules.append(FlowRule(Match(**constraints), action, priority=priority, name=f"r{index}"))
    rules.append(FlowRule(Match.any(), DENY, priority=-1, name="default"))
    return rules


def _mixed_traffic(seed: int, count: int) -> list[FlowKey]:
    rng = np.random.default_rng(seed)
    base = [
        FlowKey(
            ip_src=int(rng.integers(0, 1 << 32)),
            ip_dst=int(rng.integers(0, 1 << 32)),
            tp_src=int(rng.integers(0, 1 << 16)),
            tp_dst=int(rng.integers(0, 1 << 16)),
            ip_proto=6,
        )
        for _ in range(max(4, count // 8))
    ]
    keys = []
    for _ in range(count):
        if rng.random() < 0.55:
            keys.append(base[int(rng.integers(0, len(base)))])
        else:
            keys.append(
                FlowKey(
                    ip_src=int(rng.integers(0, 1 << 32)),
                    ip_dst=int(rng.integers(0, 1 << 32)),
                    tp_src=int(rng.integers(0, 1 << 16)),
                    tp_dst=int(rng.integers(0, 1 << 16)),
                    ip_proto=6,
                )
            )
    return keys


# -- protocol and registry ---------------------------------------------------------

class TestRegistry:
    def test_builtin_backends_registered(self):
        names = megaflow_backend_names()
        assert "tss" in names and "tuplechain" in names

    @pytest.mark.parametrize("name", BACKENDS)
    def test_factories_satisfy_protocol(self, name):
        backend = make_megaflow_backend(name, check_invariants=True)
        assert isinstance(backend, MegaflowBackend)
        assert isinstance(backend, MegaflowStore)
        assert backend.check_invariants

    def test_unknown_backend_rejected(self):
        with pytest.raises(ClassifierError):
            make_megaflow_backend("quantum")
        with pytest.raises(ClassifierError):
            Datapath(FlowTable(), DatapathConfig(megaflow_backend="quantum"))

    def test_config_selects_backend(self):
        table = FlowTable()
        assert isinstance(
            Datapath(table, DatapathConfig(megaflow_backend="tss")).megaflows,
            TupleSpaceSearch,
        )
        assert isinstance(
            Datapath(table, DatapathConfig(megaflow_backend="tuplechain")).megaflows,
            TupleChainSearch,
        )

    def test_injected_instance_wins(self):
        cache = TupleChainSearch()
        datapath = Datapath(FlowTable(), megaflows=cache)
        assert datapath.megaflows is cache

    def test_tuplechain_rejects_hit_sorted(self):
        with pytest.raises(CacheInvariantError):
            TupleChainSearch(scan_policy="hit_sorted")

    def test_non_empty_injected_backend_rejected(self):
        from repro.exceptions import SwitchError

        generator = MegaflowGenerator(SIPDP.build_table())
        cache = TupleChainSearch()
        cache.insert(generator.generate(FlowKey(tp_dst=80, ip_proto=6)).entry)
        with pytest.raises(SwitchError):
            Datapath(FlowTable(), megaflows=cache)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_rejected_insert_leaves_no_ghost_mask(self, name):
        """An Inv(2) failure must not register the offending entry's mask."""
        from repro.classifier.backend import MegaflowEntry
        from repro.packet.fields import FlowMask

        def entry(mask: FlowMask, tp_dst: int) -> MegaflowEntry:
            return MegaflowEntry(
                mask=mask, key=FlowKey(tp_dst=tp_dst).masked(mask), action=ALLOW
            )

        cache = make_megaflow_backend(name, check_invariants=True)
        mask_a = FlowMask(tp_dst=0xFFFF)
        cache.insert(entry(mask_a, 80))
        cache.lookup(FlowKey(tp_dst=80))  # warm any incremental index
        mask_b = FlowMask(tp_dst=0xFF00)  # wildcards the low byte: covers 80 too
        with pytest.raises(CacheInvariantError):
            cache.insert(entry(mask_b, 0))
        assert cache.n_masks == 1  # no ghost mask registered
        assert mask_b not in cache.masks()
        # A later disjoint insert under the same mask must work, not crash.
        fine = cache.insert(entry(mask_b, 0x1200))
        assert cache.find_entry(fine)
        assert cache.lookup(FlowKey(tp_dst=0x1234)).entry is fine


# -- differential: backends agree on everything observable -------------------------

def _datapaths(rules, **config):
    made = {}
    for name in BACKENDS:
        made[name] = Datapath(
            FlowTable(rules=[FlowRule(r.match, r.action, priority=r.priority, name=r.name) for r in rules]),
            DatapathConfig(megaflow_backend=name, **config),
        )
    return made


STATS_FIELDS = (
    "packets",
    "microflow_hits",
    "mask_cache_hits",
    "megaflow_hits",
    "upcalls",
    "installs",
    "install_rejected",
    "dead_entry_suppressed",
)


def assert_backends_agree(a: Datapath, b: Datapath):
    """Everything observable except probe units must match."""
    for field in STATS_FIELDS:
        assert getattr(a.stats, field) == getattr(b.stats, field), field
    assert a.megaflows.stats_hits == b.megaflows.stats_hits
    assert a.megaflows.stats_misses == b.megaflows.stats_misses
    assert set(a.megaflows.masks()) == set(b.megaflows.masks())
    assert sorted((e.mask.values, e.key) for e in a.megaflows.entries()) == sorted(
        (e.mask.values, e.key) for e in b.megaflows.entries()
    )


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    rules=rule_sets(),
    seed=st.integers(min_value=0, max_value=2**31),
    microflow=st.sampled_from([0, 8]),
    mask_cache=st.booleans(),
    batch_size=st.integers(min_value=1, max_value=17),
)
def test_backends_verdict_identical(rules, seed, microflow, mask_cache, batch_size):
    """TSS and TupleChain agree on verdicts, paths, entries, and stats."""
    dps = _datapaths(
        rules,
        microflow_capacity=microflow,
        enable_mask_cache=mask_cache,
        mask_cache_size=8,
    )
    keys = _mixed_traffic(seed, 60)
    transcripts = {}
    for name, datapath in dps.items():
        verdicts = []
        for start in range(0, len(keys), batch_size):
            verdicts.extend(
                datapath.process_batch(keys[start : start + batch_size], now=1.0).verdicts
            )
        transcripts[name] = verdicts
    reference = transcripts["tss"]
    for name in BACKENDS:
        if name == "tss":
            continue
        for i, (x, y) in enumerate(zip(reference, transcripts[name])):
            assert x.action == y.action, (name, i)
            assert x.path == y.path, (name, i)
            assert x.rules_examined == y.rules_examined, (name, i)
            assert (x.installed is None) == (y.installed is None), (name, i)
        assert_backends_agree(dps["tss"], dps[name])


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    rules=rule_sets(),
    keys=st.lists(
        st.builds(
            FlowKey,
            ip_src=st.integers(min_value=0, max_value=(1 << 32) - 1),
            tp_src=st.integers(min_value=0, max_value=(1 << 16) - 1),
            tp_dst=st.integers(min_value=0, max_value=(1 << 16) - 1),
        ),
        min_size=1,
        max_size=24,
    ),
)
def test_tuplechain_batch_equals_sequential(rules, keys):
    """Batch ≡ sequential for the grouped backend, probe units included."""
    table = FlowTable(rules=rules)
    generator = MegaflowGenerator(table)

    def build():
        cache = TupleChainSearch()
        for key in keys:
            cache.insert(generator.generate(key).entry)
        return cache

    replay = list(keys) + list(keys)
    a, b = build(), build()
    sequential = [a.lookup(k, now=1.0) for k in replay]
    batched = list(b.lookup_batch(replay, now=1.0))
    assert len(sequential) == len(batched)
    for i, (x, y) in enumerate(zip(sequential, batched)):
        assert x.masks_inspected == y.masks_inspected, i
        assert (x.entry is None) == (y.entry is None), i
        if x.entry is not None:
            assert x.entry.mask == y.entry.mask and x.entry.key == y.entry.key, i
    assert a.stats_hits == b.stats_hits
    assert a.stats_misses == b.stats_misses


def test_eviction_outcomes_identical():
    """Idle eviction removes the same entries whatever the backend."""
    dps = _datapaths(
        [
            FlowRule(Match(tp_dst=(80, 0xFFFF)), ALLOW, priority=1, name="allow-80"),
            FlowRule(Match.any(), DENY, priority=-1, name="default"),
        ],
        microflow_capacity=0,
    )
    from repro.core.tracegen import bit_inversion_list

    # Distinct megaflows: one per inverted bit of the allowed value.
    values = bit_inversion_list(80, 16)[1:]
    evicted = {}
    for name, datapath in dps.items():
        for i, value in enumerate(values):
            datapath.process(FlowKey(ip_src=i, tp_dst=value, ip_proto=6), now=float(i))
        evicted[name] = {
            (e.mask.values, e.key) for e in datapath.evict_idle(now=22.0)
        }
        # Re-lookup after eviction: both backends rebuild their index.
        verdict = datapath.process(FlowKey(ip_src=3, tp_dst=80, ip_proto=6), now=22.5)
        assert verdict.action == ALLOW
    assert evicted["tss"]  # the early flows idled out
    for name in BACKENDS:
        assert evicted[name] == evicted["tss"], name
        assert_backends_agree(dps["tss"], dps[name])


def test_attack_detonation_identical_and_probe_bounded():
    """The SipDp staircase: same cache contents, bounded chain probes."""
    dps = {}
    for name in BACKENDS:
        datapath = Datapath(
            SIPDP.build_table(),
            DatapathConfig(microflow_capacity=0, megaflow_backend=name),
        )
        trace = ColocatedTraceGenerator(
            datapath.flow_table, base={"ip_proto": PROTO_TCP}
        ).generate()
        datapath.process_batch(list(trace.keys))
        dps[name] = (datapath, list(trace.keys))

    (tss_dp, keys), (chain_dp, _) = dps["tss"], dps["tuplechain"]
    assert tss_dp.n_masks == chain_dp.n_masks > 500
    assert_backends_agree(tss_dp, chain_dp)

    # Replay: identical verdicts; grouped probes bounded by the chain
    # structure (a handful of groups), not the 500+ mask scan.
    tss_dp.megaflows.clear_memo()
    chain_dp.megaflows.clear_memo()
    expected = tss_dp.process_batch(keys)
    got = chain_dp.process_batch(keys)
    assert [v.action for v in expected] == [v.action for v in got]
    assert [v.path for v in expected] == [v.path for v in got]
    probes = [v.masks_inspected for v in got]
    assert chain_dp.megaflows.n_groups <= 3
    assert max(probes) < chain_dp.n_masks / 4
    assert max(probes) < 120


def test_tuplechain_group_accounting():
    """Groups and chains reflect the constrained-field structure."""
    cache = TupleChainSearch()
    generator = MegaflowGenerator(SIPDP.build_table())
    for i in range(64):
        cache.insert(generator.generate(FlowKey(ip_src=i, tp_dst=81, ip_proto=6)).entry)
    sizes = cache.group_sizes()
    assert sum(sizes.values()) == cache.n_masks
    assert len(sizes) == cache.n_groups
    assert sum(count for _mask, count in cache.chains()) == cache.n_entries


def test_find_and_probe_mask_shared_surface():
    """The store surface behaves identically across backends."""
    for name in BACKENDS:
        cache = make_megaflow_backend(name)
        generator = MegaflowGenerator(SIPDP.build_table())
        key = FlowKey(ip_src=9, tp_dst=80, ip_proto=6)
        entry = cache.insert(generator.generate(key).entry)
        assert cache.find(key) is entry
        assert cache.find_entry(entry)
        assert cache.probe_mask(entry.mask, key, now=1.0) is entry
        assert cache.entries_for_mask(entry.mask) == [entry]
        assert cache.memory_bytes() > 0
        assert len(cache) == 1
        cache.verify_disjoint()
        assert cache.remove(entry)
        assert cache.find(key) is None
