"""Unit tests for traffic sources and victim flows."""

import pytest

from repro.core.general import GeneralTraceGenerator
from repro.core.usecases import DP
from repro.exceptions import SimulationError
from repro.netsim.cloud import SYNTHETIC_ENV
from repro.netsim.flows import ActiveWindow, AttackSource, RandomFloodSource, VictimFlow
from repro.netsim.hypervisor import HypervisorHost
from repro.packet.fields import FlowKey
from repro.packet.headers import PROTO_TCP
from repro.switch.datapath import Datapath


def make_host() -> HypervisorHost:
    table = DP.build_table()
    return HypervisorHost(Datapath(table), SYNTHETIC_ENV.cost_model)


KEYS = [FlowKey(ip_proto=PROTO_TCP, tp_dst=i) for i in range(10)]


class TestActiveWindow:
    def test_contains(self):
        window = ActiveWindow(1.0, 2.0)
        assert window.contains(1.0)
        assert window.contains(1.999)
        assert not window.contains(2.0)
        assert not window.contains(0.5)

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            ActiveWindow(2.0, 2.0)


class TestAttackSource:
    def test_rate_accounting(self):
        host = make_host()
        source = AttackSource(host, KEYS, pps=100)
        for tick in range(10):
            source.tick(tick * 0.1, 0.1)
        assert source.packets_sent == 100
        assert source.current_pps == pytest.approx(100, rel=0.2)

    def test_windows_respected(self):
        host = make_host()
        source = AttackSource(host, KEYS, pps=100, windows=[ActiveWindow(1.0, 2.0)])
        source.tick(0.5, 0.1)
        assert source.packets_sent == 0
        source.tick(1.5, 0.1)
        assert source.packets_sent == 10
        source.tick(2.5, 0.1)
        assert source.packets_sent == 10

    def test_fractional_rates_accumulate(self):
        host = make_host()
        source = AttackSource(host, KEYS, pps=5)  # 0.5 packets per 0.1 s tick
        for tick in range(20):
            source.tick(tick * 0.1, 0.1)
        assert source.packets_sent == 10

    def test_trace_loops(self):
        host = make_host()
        source = AttackSource(host, KEYS[:3], pps=100)
        source.tick(0.0, 0.1)  # 10 packets from a 3-key trace
        assert source.packets_sent == 10

    def test_no_loop_exhausts(self):
        host = make_host()
        source = AttackSource(host, KEYS[:3], pps=100, loop=False)
        source.tick(0.0, 0.1)
        assert source.packets_sent == 3

    def test_set_rate(self):
        host = make_host()
        source = AttackSource(host, KEYS, pps=10)
        source.set_rate(1000)
        source.tick(0.0, 0.1)
        assert source.packets_sent == 100
        with pytest.raises(SimulationError):
            source.set_rate(-1)

    def test_empty_trace_rejected(self):
        with pytest.raises(SimulationError):
            AttackSource(make_host(), [], pps=10)

    def test_packets_reach_datapath(self):
        host = make_host()
        source = AttackSource(host, KEYS, pps=100)
        source.tick(0.0, 0.1)
        assert host.datapath.stats.packets == 10


class TestRandomFlood:
    def test_streams_random_keys(self):
        host = make_host()
        generator = GeneralTraceGenerator(fields=("tp_dst",), base={"ip_proto": PROTO_TCP})
        source = RandomFloodSource(host, generator, pps=100)
        source.tick(0.0, 0.1)
        source.tick(0.1, 0.1)
        assert source.packets_sent == 20


class TestVictimFlow:
    def test_registration(self):
        host = make_host()
        VictimFlow(host, "v", KEYS[:1], offered_gbps=1.0)
        assert "v" in host.victims

    def test_duplicate_name_rejected(self):
        host = make_host()
        VictimFlow(host, "v", KEYS[:1], offered_gbps=1.0)
        with pytest.raises(SimulationError):
            VictimFlow(host, "v", KEYS[:1], offered_gbps=1.0)

    def test_tcp_ramps_up(self):
        host = make_host()
        flow = VictimFlow(host, "v", KEYS[:1], offered_gbps=5.0, kind="tcp", ramp_tau=1.0)
        rates = []
        for tick in range(100):
            now = tick * 0.1
            flow.tick(now, 0.1)
            host.tick(now, 0.1)
            flow.settle(now, 0.1)
            rates.append(flow.rate_gbps)
        assert rates[5] < rates[50] <= rates[-1]
        assert rates[-1] == pytest.approx(5.0, rel=0.05)

    def test_udp_jumps_to_capacity(self):
        host = make_host()
        flow = VictimFlow(host, "v", KEYS[:1], offered_gbps=5.0, kind="udp")
        flow.tick(0.0, 0.1)
        host.tick(0.0, 0.1)
        flow.settle(0.0, 0.1)
        assert flow.rate_gbps == pytest.approx(5.0, rel=0.05)

    def test_windows_start_stop(self):
        host = make_host()
        flow = VictimFlow(host, "v", KEYS[:1], offered_gbps=1.0, kind="udp",
                          windows=[ActiveWindow(1.0, 2.0)])
        flow.tick(0.0, 0.1)
        assert not host.victims["v"].active
        flow.tick(1.0, 0.1)
        assert host.victims["v"].active
        flow.tick(2.5, 0.1)
        assert not host.victims["v"].active
        assert flow.rate_gbps == 0.0

    def test_invalid_args(self):
        host = make_host()
        with pytest.raises(SimulationError):
            VictimFlow(host, "x", KEYS[:1], offered_gbps=0)
        with pytest.raises(SimulationError):
            VictimFlow(host, "y", KEYS[:1], offered_gbps=1, kind="sctp")
