"""Unit tests for layered packets: stacks, serialization, flow keys."""

import pytest

from repro.exceptions import PacketError
from repro.packet.headers import (
    ETHERTYPE_IPV4,
    ETHERTYPE_IPV6,
    ICMP,
    IPv4,
    IPv6,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    TCP,
    UDP,
    Ethernet,
)
from repro.packet.packet import Packet, parse_packet


def tcp_packet(payload: bytes = b"data") -> Packet:
    return Packet(
        layers=[
            Ethernet(src=1, dst=2),
            IPv4(src=0x0A000001, dst=0x0A000002, proto=PROTO_TCP, ttl=33, tos=4),
            TCP(src_port=1234, dst_port=80),
        ],
        payload=payload,
    )


class TestStackValidation:
    def test_valid_stack(self):
        tcp_packet()  # no exception

    def test_tcp_cannot_follow_ethernet(self):
        with pytest.raises(PacketError, match="cannot follow"):
            Packet(layers=[Ethernet(), TCP()])

    def test_ipv4_cannot_follow_ipv4(self):
        with pytest.raises(PacketError, match="cannot follow"):
            Packet(layers=[IPv4(), IPv4()])

    def test_unsupported_layer_type(self):
        with pytest.raises(PacketError, match="unsupported layer"):
            Packet(layers=["ethernet"])  # type: ignore[list-item]


class TestSerialization:
    def test_roundtrip_tcp(self):
        packet = tcp_packet()
        parsed = parse_packet(packet.to_bytes())
        assert parsed.ip.src == 0x0A000001
        assert parsed.tcp.dst_port == 80
        assert parsed.payload == b"data"

    def test_roundtrip_udp(self):
        packet = Packet(
            layers=[Ethernet(), IPv4(proto=PROTO_UDP), UDP(src_port=53, dst_port=5353)],
            payload=b"q",
        )
        parsed = parse_packet(packet.to_bytes())
        assert parsed.udp.src_port == 53
        assert parsed.payload == b"q"

    def test_roundtrip_icmp(self):
        packet = Packet(layers=[Ethernet(), IPv4(proto=PROTO_ICMP), ICMP(icmp_type=8)])
        parsed = parse_packet(packet.to_bytes())
        assert parsed.icmp.icmp_type == 8

    def test_roundtrip_ipv6(self):
        packet = Packet(
            layers=[
                Ethernet(ethertype=ETHERTYPE_IPV6),
                IPv6(src=1 << 100, dst=2, next_header=PROTO_TCP),
                TCP(dst_port=443),
            ]
        )
        parsed = parse_packet(packet.to_bytes())
        assert parsed.ip6.src == 1 << 100
        assert parsed.tcp.dst_port == 443

    def test_raw_ip_parsing(self):
        wire = tcp_packet().to_bytes()[Ethernet.HEADER_LEN:]
        parsed = parse_packet(wire, link_layer=False)
        assert parsed.eth is None
        assert parsed.tcp is not None

    def test_wire_length(self):
        packet = tcp_packet(payload=b"x" * 10)
        assert packet.wire_length() == 14 + 20 + 20 + 10
        assert len(packet.to_bytes()) == packet.wire_length()

    def test_empty_packet_raises(self):
        with pytest.raises(PacketError):
            parse_packet(b"", link_layer=False)


class TestFlowKeyExtraction:
    def test_tcp_fields(self):
        key = tcp_packet().flow_key(in_port=3)
        assert key["in_port"] == 3
        assert key["eth_type"] == ETHERTYPE_IPV4
        assert key["ip_src"] == 0x0A000001
        assert key["ip_proto"] == PROTO_TCP
        assert key["ip_ttl"] == 33
        assert key["ip_tos"] == 4
        assert key["tp_src"] == 1234
        assert key["tp_dst"] == 80

    def test_udp_ports_extracted(self):
        packet = Packet(layers=[Ethernet(), IPv4(proto=PROTO_UDP), UDP(src_port=7, dst_port=9)])
        key = packet.flow_key()
        assert key["tp_src"] == 7
        assert key["tp_dst"] == 9

    def test_icmp_maps_type_code_to_ports(self):
        packet = Packet(layers=[Ethernet(), IPv4(proto=PROTO_ICMP), ICMP(icmp_type=8, code=1)])
        key = packet.flow_key()
        assert key["tp_src"] == 8
        assert key["tp_dst"] == 1

    def test_ipv6_fields(self):
        packet = Packet(
            layers=[Ethernet(ethertype=ETHERTYPE_IPV6), IPv6(src=5, dst=6), TCP()]
        )
        key = packet.flow_key()
        assert key["ipv6_src"] == 5
        assert key["ipv6_dst"] == 6
        assert key["ip_src"] == 0  # v4 fields zero-filled
        assert key["eth_type"] == ETHERTYPE_IPV6

    def test_parse_then_extract_equals_direct_extract(self):
        packet = tcp_packet()
        assert parse_packet(packet.to_bytes()).flow_key() == packet.flow_key()
