"""Unit tests for the CMS policy backends (§7 expressiveness bounds)."""

import pytest

from repro.exceptions import PolicyError
from repro.netsim.cms import (
    BACKENDS,
    CalicoPolicy,
    KubernetesNetworkPolicy,
    OpenStackSecurityGroups,
    PolicyRule,
)
from repro.packet.fields import FlowKey
from repro.packet.headers import PROTO_TCP, PROTO_UDP

VM_IP = 0xC0000201


class TestPolicyRule:
    def test_validation(self):
        with pytest.raises(PolicyError):
            PolicyRule(direction="sideways")
        with pytest.raises(PolicyError):
            PolicyRule(protocol="icmp")


class TestOpenStack:
    def test_sipdp_expressible(self):
        backend = OpenStackSecurityGroups()
        rule = backend.compile_rule(
            PolicyRule(remote_ip=(0x0A000001, 0xFFFFFFFF), dst_port=80),
            vm_ip=VM_IP, priority=10, name="sg-1",
        )
        assert rule.match.constraint("ip_src") == (0x0A000001, 0xFFFFFFFF)
        assert rule.match.constraint("tp_dst") == (80, 0xFFFF)
        assert rule.match.constraint("ip_dst") == (VM_IP, 0xFFFFFFFF)

    def test_source_port_rejected(self):
        """§5.5: 'The CMS API only allows the SipDp scenario'."""
        backend = OpenStackSecurityGroups()
        with pytest.raises(PolicyError, match="source port"):
            backend.validate(PolicyRule(src_port=12345))

    def test_egress_rejected(self):
        with pytest.raises(PolicyError):
            OpenStackSecurityGroups().validate(PolicyRule(direction="egress"))

    def test_ceiling(self):
        assert OpenStackSecurityGroups().max_use_case() == "SipDp"


class TestKubernetes:
    def test_source_port_rejected(self):
        with pytest.raises(PolicyError):
            KubernetesNetworkPolicy().validate(PolicyRule(src_port=1))

    def test_ingress_ipblock_and_port(self):
        backend = KubernetesNetworkPolicy()
        rule = backend.compile_rule(
            PolicyRule(remote_ip=(0x0A000000, 0xFF000000), dst_port=443),
            vm_ip=VM_IP, priority=5,
        )
        key_ok = FlowKey(ip_proto=PROTO_TCP, ip_dst=VM_IP, ip_src=0x0A010101, tp_dst=443)
        assert rule.matches(key_ok)


class TestCalico:
    def test_source_port_allowed(self):
        """§7: Calico unlocks the full Fig. 6 / SipSpDp ACL."""
        backend = CalicoPolicy()
        rule = backend.compile_rule(
            PolicyRule(src_port=12345), vm_ip=VM_IP, priority=5
        )
        assert rule.match.constraint("tp_src") == (12345, 0xFFFF)
        assert backend.max_use_case() == "SipSpDp"

    def test_egress_with_destination(self):
        backend = CalicoPolicy()
        rule = backend.compile_rule(
            PolicyRule(direction="egress", remote_dst_ip=(0x08080808, 0xFFFFFFFF)),
            vm_ip=VM_IP, priority=5,
        )
        assert rule.match.constraint("ip_src") == (VM_IP, 0xFFFFFFFF)
        assert rule.match.constraint("ip_dst") == (0x08080808, 0xFFFFFFFF)

    def test_egress_needs_destination(self):
        with pytest.raises(PolicyError):
            CalicoPolicy().validate(PolicyRule(direction="egress"))


class TestCommonCompilation:
    def test_udp_protocol(self):
        rule = BACKENDS["calico"].compile_rule(
            PolicyRule(protocol="udp", dst_port=53), vm_ip=VM_IP, priority=1
        )
        assert rule.match.constraint("ip_proto") == (PROTO_UDP, 0xFF)

    def test_registry(self):
        assert set(BACKENDS) == {"openstack", "kubernetes", "calico"}
