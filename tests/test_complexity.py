"""Unit tests for the Theorem 4.1/4.2 trade-off calculators."""

import pytest

from repro.core.complexity import (
    chunk_sizes,
    constructive_cost_multi,
    constructive_cost_single,
    theorem41_bound,
    theorem42_bound,
    tradeoff_curve,
)
from repro.exceptions import ExperimentError


class TestChunkSizes:
    def test_even_split(self):
        assert chunk_sizes(16, 4) == [4, 4, 4, 4]

    def test_remainder_goes_first(self):
        assert chunk_sizes(16, 3) == [6, 5, 5]

    def test_extremes(self):
        assert chunk_sizes(8, 1) == [8]
        assert chunk_sizes(8, 8) == [1] * 8

    def test_bounds(self):
        with pytest.raises(ExperimentError):
            chunk_sizes(8, 0)
        with pytest.raises(ExperimentError):
            chunk_sizes(8, 9)


class TestTheorem41:
    def test_extreme_points(self):
        """k=1: O(2^w) space; k=w: O(w) space (§4.1 named strategies)."""
        exact = constructive_cost_single(16, 1)
        assert exact.time == 1
        assert exact.space == 2**16  # 2^16 - 1 deny keys + the allow key
        wildcard = constructive_cost_single(16, 16)
        assert wildcard.time == 16
        assert wildcard.space == 17  # w + 1 entries (Fig. 3 scaled up)

    @pytest.mark.parametrize("w,k", [(8, 1), (8, 2), (8, 4), (8, 8),
                                     (16, 2), (16, 8), (32, 4)])
    def test_construction_meets_bound(self, w, k):
        bound = theorem41_bound(w, k)
        construct = constructive_cost_single(w, k)
        assert construct.time == bound.time == k
        assert construct.space >= bound.space

    def test_bound_tight_when_k_divides_w(self):
        for k in (1, 2, 4, 8, 16):
            bound = theorem41_bound(16, k)
            construct = constructive_cost_single(16, k)
            # +1 for the allow entry the bound's deny-only count omits.
            assert construct.space == bound.space + 1

    def test_construction_matches_real_cache(self):
        """Closed form == exhaustive cache build, for every k at w=8."""
        from repro.experiments.theorem41 import build_cache_for_k

        for k in (1, 2, 3, 4, 8):
            cache = build_cache_for_k(8, k)
            closed = constructive_cost_single(8, k)
            assert cache.n_masks == closed.time
            assert cache.n_entries == closed.space

    def test_bound_validates_k(self):
        with pytest.raises(ExperimentError):
            theorem41_bound(8, 0)
        with pytest.raises(ExperimentError):
            theorem41_bound(8, 9)

    def test_curve_shape(self):
        curve = tradeoff_curve(12)
        assert len(curve) == 12
        spaces = [point.space for point in curve]
        assert spaces == sorted(spaces, reverse=True)  # space falls as k grows
        times = [point.time for point in curve]
        assert times == sorted(times)  # time grows with k


class TestTheorem42:
    def test_wildcarding_gives_paper_product(self):
        """k_i = w_i on Fig. 6 widths -> the 8192-mask product."""
        point = constructive_cost_multi((16, 32, 16), (16, 32, 16))
        assert point.time == 16 * 32 * 16 + 1 + 16  # = attainable_masks
        assert point.space == 16 * 32 * 16 + 1 + 16 + 16 * 32

    def test_exact_match_extreme(self):
        point = constructive_cost_multi((4, 4), (1, 1))
        # One deny mask (product of 1s) + allow-rule-1 mask.
        assert point.time == 2
        # Deny keys: (2^4-1)^2; allow keys: 1 + (2^4-1).
        assert point.space == 15 * 15 + 1 + 15

    def test_multi_meets_bound(self):
        for ks in ((1, 1), (2, 4), (4, 4), (8, 16)):
            bound = theorem42_bound((8, 16), ks)
            construct = constructive_cost_multi((8, 16), ks)
            assert construct.space >= bound.space

    def test_matches_real_cache_small(self):
        """Closed form == exhaustive build on scaled-down widths."""
        from repro.experiments.theorem42 import build_cache_multi

        widths, ks = (3, 4), (3, 2)
        cache = build_cache_multi(widths, ks)
        closed = constructive_cost_multi(widths, ks)
        assert cache.n_masks == closed.time
        assert cache.n_entries == closed.space

    def test_fig4_is_a_theorem42_instance(self):
        point = constructive_cost_multi((3, 4), (3, 4))
        assert point.time == 13  # the paper's 3*4+1
        assert point.space == 16  # Fig. 5's entries

    def test_length_mismatch(self):
        with pytest.raises(ExperimentError):
            theorem42_bound((8, 16), (1,))
        with pytest.raises(ExperimentError):
            constructive_cost_multi((8,), (1, 1))

    def test_product_property(self):
        point = theorem42_bound((8, 8), (2, 2))
        assert point.time == 4
        assert point.product == point.time * point.space
