"""Unit tests for cost-curve calibration against the paper's anchors."""

import pytest

from repro.exceptions import SwitchError
from repro.switch.calibration import CurveParams, fit_profile, fraction_of_baseline
from repro.switch.offload import FHO_TCP, GRO_OFF_TCP, GRO_ON_TCP, NicProfile, UDP_PROFILE


class TestFitQuality:
    """The fitted curves must land on the paper's §5.4/§6.2 numbers."""

    @pytest.mark.parametrize("profile", [GRO_OFF_TCP, GRO_ON_TCP, FHO_TCP, UDP_PROFILE],
                             ids=lambda p: p.name)
    def test_anchor_errors_bounded(self, profile):
        params = fit_profile(profile)
        for masks, target in profile.anchors.items():
            assert params.fraction(masks) == pytest.approx(target, rel=0.12), (
                f"{profile.name} at {masks} masks"
            )

    def test_gro_off_headline_numbers(self):
        """§5.4: 53% at 17 masks, 10% at 260, 4.7% at 516, 0.2% at 8200."""
        params = fit_profile(GRO_OFF_TCP)
        assert params.fraction(17) == pytest.approx(0.53, abs=0.03)
        assert params.fraction(260) == pytest.approx(0.10, abs=0.01)
        assert params.fraction(8200) == pytest.approx(0.002, abs=0.0005)

    def test_fit_is_cached(self):
        assert fit_profile(GRO_OFF_TCP) is fit_profile(GRO_OFF_TCP)

    def test_profile_without_anchors_rejected(self):
        bare = NicProfile(name="bare", baseline_gbps=1.0, unit_bytes=1500)
        with pytest.raises(SwitchError, match="anchors"):
            fit_profile(bare)


class TestCurveShape:
    def test_monotone_decreasing(self):
        params = fit_profile(GRO_OFF_TCP)
        fractions = [params.fraction(m) for m in (1, 10, 100, 1000, 8200)]
        assert fractions == sorted(fractions, reverse=True)

    def test_fraction_at_one_mask_is_full(self):
        for profile in (GRO_OFF_TCP, GRO_ON_TCP, FHO_TCP, UDP_PROFILE):
            assert fit_profile(profile).fraction(1) == pytest.approx(1.0, abs=0.05)

    def test_zero_masks_treated_as_one(self):
        params = fit_profile(GRO_OFF_TCP)
        assert params.fraction(0) == params.fraction(1)

    def test_negative_masks_rejected(self):
        params = fit_profile(GRO_OFF_TCP)
        with pytest.raises(SwitchError):
            params.relative_cost(-1)

    def test_relative_cost_inverse_of_fraction(self):
        params = fit_profile(GRO_OFF_TCP)
        for masks in (17, 260, 8200):
            cost = params.relative_cost(masks)
            # fraction = min(1, baseline/cost): for degraded points they
            # are exact inverses (up to the a+b normalisation).
            assert params.fraction(masks) == pytest.approx(
                min(1.0, 1.0 / (cost * (params.a + params.b))), rel=1e-6
            )

    def test_step_models_microflow_thrash(self):
        """The GRO OFF curve needs the M>1 step for its steep first drop."""
        params = fit_profile(GRO_OFF_TCP)
        assert params.s > 0.1

    def test_convenience_wrapper(self):
        assert fraction_of_baseline(GRO_OFF_TCP, 17) == fit_profile(GRO_OFF_TCP).fraction(17)


class TestCurveParamsDirect:
    def test_manual_params(self):
        params = CurveParams(a=1.0, s=0.0, b=0.0, gamma=1.0)
        assert params.fraction(100) == 1.0
        assert params.relative_cost(100) == 1.0

    def test_linear_curve(self):
        params = CurveParams(a=0.0, s=0.0, b=1.0, gamma=1.0)
        assert params.relative_cost(10) == pytest.approx(10.0)
