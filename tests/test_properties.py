"""Property-based tests (hypothesis) for the core invariants.

These are the load-bearing correctness arguments of the reproduction:

* megaflow generation satisfies Cover (Inv(1)) and Independence (Inv(2))
  for arbitrary rule sets, strategies and traffic;
* the cached datapath is semantically transparent (≡ flow-table lookup);
* every alternative classifier agrees with linear search;
* the analytic expectation formulas agree with each other and stay within
  their combinatorial bounds;
* wire-format round-trips are lossless.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.classifier.actions import ALLOW, DENY
from repro.classifier.adapter import TssCachedClassifier
from repro.classifier.flowtable import FlowTable
from repro.classifier.harp import HarpClassifier
from repro.classifier.hypercuts import HyperCutsClassifier
from repro.classifier.linear import LinearSearchClassifier
from repro.classifier.rule import FlowRule, Match
from repro.classifier.slowpath import MegaflowGenerator, StrategyConfig
from repro.classifier.trie import HierarchicalTrieClassifier
from repro.classifier.tss import TupleSpaceSearch
from repro.core.analysis import (
    attainable_masks,
    expected_masks,
)
from repro.packet.builder import PacketBuilder
from repro.packet.fields import FIELDS, FlowKey
from repro.packet.packet import parse_packet

# -- strategies -----------------------------------------------------------------

FIELD_POOL = ("ip_src", "ip_dst", "tp_src", "tp_dst", "ip_proto")


@st.composite
def prefix_constraints(draw):
    """A (field, value, prefix-mask) constraint."""
    name = draw(st.sampled_from(FIELD_POOL))
    width = FIELDS[name].width
    plen = draw(st.integers(min_value=1, max_value=width))
    mask = ((1 << plen) - 1) << (width - plen)
    value = draw(st.integers(min_value=0, max_value=(1 << width) - 1)) & mask
    return name, value, mask


@st.composite
def rule_sets(draw, max_rules=8):
    """A random prefix-style rule set with a catch-all deny."""
    n = draw(st.integers(min_value=1, max_value=max_rules))
    rules = []
    for index in range(n):
        constraints = {}
        for _ in range(draw(st.integers(min_value=1, max_value=3))):
            name, value, mask = draw(prefix_constraints())
            constraints[name] = (value, mask)
        action = ALLOW if draw(st.booleans()) else DENY
        priority = draw(st.integers(min_value=0, max_value=5))
        rules.append(FlowRule(Match(**constraints), action, priority=priority, name=f"r{index}"))
    rules.append(FlowRule(Match.any(), DENY, priority=-1, name="default"))
    return rules


@st.composite
def flow_keys(draw):
    kwargs = {}
    for name in FIELD_POOL:
        width = FIELDS[name].width
        kwargs[name] = draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    return FlowKey(**kwargs)


@st.composite
def strategies_cfg(draw):
    choice = draw(st.integers(min_value=0, max_value=3))
    if choice == 0:
        return StrategyConfig()  # wildcarding
    if choice == 1:
        return StrategyConfig(default_chunks=1)  # exact
    if choice == 2:
        return StrategyConfig(default_chunks=draw(st.integers(min_value=2, max_value=6)))
    return StrategyConfig(wide_field_threshold=draw(st.integers(min_value=8, max_value=64)))


# -- megaflow generation invariants ------------------------------------------------

@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(rules=rule_sets(), keys=st.lists(flow_keys(), min_size=1, max_size=25),
       strategy=strategies_cfg())
def test_cover_invariant(rules, keys, strategy):
    """Inv(1): every generated megaflow matches the packet that spawned it."""
    table = FlowTable(rules=rules)
    generator = MegaflowGenerator(table, strategy)
    for key in keys:
        assert generator.generate(key).entry.covers(key)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(rules=rule_sets(), keys=st.lists(flow_keys(), min_size=2, max_size=25),
       strategy=strategies_cfg())
def test_independence_invariant(rules, keys, strategy):
    """Inv(2): all generated megaflows are pairwise disjoint."""
    table = FlowTable(rules=rules)
    generator = MegaflowGenerator(table, strategy)
    cache = TupleSpaceSearch()
    for key in keys:
        cache.insert(generator.generate(key).entry)
    cache.verify_disjoint()


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(rules=rule_sets(), keys=st.lists(flow_keys(), min_size=1, max_size=25),
       strategy=strategies_cfg())
def test_generated_action_matches_table(rules, keys, strategy):
    """The megaflow carries exactly the flow table's decision."""
    table = FlowTable(rules=rules)
    generator = MegaflowGenerator(table, strategy)
    for key in keys:
        assert generator.generate(key).entry.action == table.classify(key)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(rules=rule_sets(), keys=st.lists(flow_keys(), min_size=1, max_size=40))
def test_datapath_transparency(rules, keys):
    """Caching levels never change the classification outcome."""
    from repro.switch.datapath import Datapath, DatapathConfig

    table = FlowTable(rules=rules)
    datapath = Datapath(table, DatapathConfig(microflow_capacity=16))
    for repeat in range(2):  # replays exercise micro/megaflow hits
        for key in keys:
            assert datapath.process(key).action == table.classify(key)


# -- classifier equivalence ---------------------------------------------------------

@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(rules=rule_sets(), keys=st.lists(flow_keys(), min_size=1, max_size=30))
def test_all_classifiers_agree_with_linear(rules, keys):
    reference = LinearSearchClassifier(rules)
    others = [
        HierarchicalTrieClassifier(rules),
        HyperCutsClassifier(rules),
        HarpClassifier(rules),
        TssCachedClassifier(rules),
    ]
    for key in keys:
        expected = reference.classify(key).action
        for classifier in others:
            assert classifier.classify(key).action == expected, classifier.name


# -- TSS structural properties --------------------------------------------------------

@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(rules=rule_sets(), keys=st.lists(flow_keys(), min_size=1, max_size=30))
def test_masks_inspected_bounded(rules, keys):
    table = FlowTable(rules=rules)
    generator = MegaflowGenerator(table)
    cache = TupleSpaceSearch()
    for key in keys:
        cache.insert(generator.generate(key).entry)
    for key in keys:
        result = cache.lookup(key)
        assert result.hit  # its own entry covers it
        assert 1 <= result.masks_inspected <= cache.n_masks


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(rules=rule_sets(), keys=st.lists(flow_keys(), min_size=1, max_size=30))
def test_memo_never_changes_results(rules, keys):
    """Looking the same keys up twice gives identical outcomes."""
    table = FlowTable(rules=rules)
    generator = MegaflowGenerator(table)
    cache = TupleSpaceSearch()
    for key in keys:
        cache.insert(generator.generate(key).entry)
    first = [(cache.lookup(k).hit, cache.lookup(k).masks_inspected) for k in keys]
    second = [(cache.lookup(k).hit, cache.lookup(k).masks_inspected) for k in keys]
    assert first == second


# -- detector soundness ------------------------------------------------------------

@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(rules=rule_sets(), keys=st.lists(flow_keys(), min_size=1, max_size=30))
def test_detector_never_flags_allow_entries(rules, keys):
    """Requirement (i) of §8: admitted traffic is never attributed."""
    from repro.core.detector import entry_matches_pattern

    table = FlowTable(rules=rules)
    generator = MegaflowGenerator(table)
    entries = [generator.generate(key).entry for key in keys]
    for entry in entries:
        if entry.action.is_drop:
            continue
        for rule in rules:
            assert not entry_matches_pattern(entry, rule)


# -- analytic model properties ---------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(widths=st.lists(st.integers(min_value=1, max_value=20), min_size=1, max_size=3),
       n=st.integers(min_value=0, max_value=100000))
def test_expected_mask_methods_agree(widths, n):
    census = expected_masks(widths, n, method="census")
    enumerate_ = expected_masks(widths, n, method="enumerate")
    assert abs(census - enumerate_) <= max(1e-6, 1e-9 * census)


@settings(max_examples=30, deadline=None)
@given(widths=st.lists(st.integers(min_value=1, max_value=20), min_size=1, max_size=3),
       n=st.integers(min_value=0, max_value=100000))
def test_expected_masks_bounded_and_monotone(widths, n):
    value = expected_masks(widths, n)
    assert 0.0 <= value <= attainable_masks(widths) + 1e-9
    assert value <= expected_masks(widths, n + 1000) + 1e-9


# -- wire format round-trips -------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(ip_src=st.integers(min_value=0, max_value=(1 << 32) - 1),
       ip_dst=st.integers(min_value=0, max_value=(1 << 32) - 1),
       tp_src=st.integers(min_value=0, max_value=(1 << 16) - 1),
       tp_dst=st.integers(min_value=0, max_value=(1 << 16) - 1),
       ttl=st.integers(min_value=1, max_value=255),
       payload=st.binary(max_size=64))
def test_tcp_packet_roundtrip(ip_src, ip_dst, tp_src, tp_dst, ttl, payload):
    builder = PacketBuilder()
    packet = builder.tcp(ip_src=ip_src, ip_dst=ip_dst, tp_src=tp_src,
                         tp_dst=tp_dst, ttl=ttl, payload=payload)
    parsed = parse_packet(packet.to_bytes())
    assert parsed.flow_key() == packet.flow_key()
    assert parsed.payload == payload
    assert parsed.ip.verify_checksum()


@settings(max_examples=60, deadline=None)
@given(value=st.integers(min_value=0, max_value=(1 << 32) - 1),
       plen=st.integers(min_value=0, max_value=32))
def test_prefix_mask_shape(value, plen):
    from repro.classifier.trie import prefix_length
    from repro.packet.fields import FIELDS

    mask = FIELDS["ip_src"].prefix_mask(plen)
    assert prefix_length(mask, 32) == plen
    assert (value & mask) & ~mask == 0
