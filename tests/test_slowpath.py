"""Unit tests for megaflow generation — the heart of the reproduction.

These tests check the paper's worked examples bit for bit: the Fig. 2
exact-match cache, the Fig. 3 wildcarding cache, the Fig. 5 two-field
cache, and the strategy invariants Inv(1)/Inv(2).
"""

import itertools

import pytest

from repro.classifier.actions import ALLOW, DENY
from repro.classifier.flowtable import FlowTable
from repro.classifier.rule import Match
from repro.classifier.slowpath import (
    EXACT_MATCH,
    OVS_DEFAULT,
    WILDCARDING,
    MegaflowGenerator,
    StrategyConfig,
)
from repro.classifier.tss import TupleSpaceSearch
from repro.exceptions import StrategyError
from repro.packet.fields import FlowKey
from tests.conftest import HYP2_MASK, HYP_MASK, HYP_SHIFT, hyp, hyp2


def build_cache(table, strategy, keys, check=True) -> TupleSpaceSearch:
    generator = MegaflowGenerator(table, strategy)
    cache = TupleSpaceSearch(check_invariants=check)
    for key in keys:
        cache.insert(generator.generate(key).entry)
    return cache


class TestFig3Wildcarding:
    """Fig. 3: the wildcarding strategy on the Fig. 1 ACL."""

    def test_mask_and_entry_counts(self, fig1_table):
        keys = [FlowKey(ip_tos=hyp(v)) for v in range(8)]
        cache = build_cache(fig1_table, WILDCARDING, keys)
        assert cache.n_masks == 3
        assert cache.n_entries == 4

    def test_exact_megaflows_of_fig3(self, fig1_table):
        keys = [FlowKey(ip_tos=hyp(v)) for v in range(8)]
        cache = build_cache(fig1_table, WILDCARDING, keys)
        observed = {
            (e.key[10] >> HYP_SHIFT, e.mask["ip_tos"] >> HYP_SHIFT, e.action.is_drop)
            for e in cache.entries()
        }
        # The table of Fig. 3: (key, mask, deny?)
        assert observed == {
            (0b001, 0b111, False),  # #1 allow
            (0b100, 0b100, True),   # #2
            (0b010, 0b110, True),   # #3
            (0b000, 0b111, True),   # #4
        }

    def test_every_header_classified_correctly(self, fig1_table):
        keys = [FlowKey(ip_tos=hyp(v)) for v in range(8)]
        cache = build_cache(fig1_table, WILDCARDING, keys)
        for v in range(8):
            entry = cache.lookup(FlowKey(ip_tos=hyp(v))).entry
            expected = ALLOW if v == 0b001 else DENY
            assert entry.action == expected


class TestFig2ExactMatch:
    """Fig. 2: the exact-match strategy — one mask, 2^w entries."""

    def test_single_mask_eight_entries(self, fig1_table):
        keys = [FlowKey(ip_tos=hyp(v)) for v in range(8)]
        cache = build_cache(fig1_table, EXACT_MATCH, keys)
        assert cache.n_masks == 1
        assert cache.n_entries == 8

    def test_lookup_is_single_probe(self, fig1_table):
        keys = [FlowKey(ip_tos=hyp(v)) for v in range(8)]
        cache = build_cache(fig1_table, EXACT_MATCH, keys)
        assert cache.lookup(FlowKey(ip_tos=hyp(7))).masks_inspected == 1


class TestFig5TwoFields:
    """Fig. 4/5: two-field ACL -> 13 masks (3*4+1), 16 entries."""

    def test_counts(self, fig4_table):
        keys = [
            FlowKey(ip_tos=hyp(a), ip_ttl=hyp2(b))
            for a, b in itertools.product(range(8), range(16))
        ]
        cache = build_cache(fig4_table, WILDCARDING, keys)
        assert cache.n_masks == 13
        assert cache.n_entries == 16

    def test_allow_rule_one_fully_wildcards_hyp2(self, fig4_table):
        generator = MegaflowGenerator(fig4_table, WILDCARDING)
        result = generator.generate(FlowKey(ip_tos=hyp(0b001), ip_ttl=hyp2(0b0101)))
        assert result.rule.name == "allow-hyp"
        assert result.entry.mask["ip_ttl"] == 0  # HYP2 untouched (entry #1 of Fig. 5)
        assert result.entry.mask["ip_tos"] == HYP_MASK

    def test_allow_rule_two_keeps_hyp_prefix(self, fig4_table):
        generator = MegaflowGenerator(fig4_table, WILDCARDING)
        # HYP = 1** (mismatch at bit 0), HYP2 = 1111 -> entry #2 of Fig. 5.
        result = generator.generate(FlowKey(ip_tos=hyp(0b100), ip_ttl=hyp2(0b1111)))
        assert result.rule.name == "allow-hyp2"
        assert result.entry.mask["ip_tos"] == 0b100 << HYP_SHIFT
        assert result.entry.mask["ip_ttl"] == HYP2_MASK

    def test_classification_agrees_with_table(self, fig4_table):
        generator = MegaflowGenerator(fig4_table, WILDCARDING)
        for a, b in itertools.product(range(8), range(16)):
            key = FlowKey(ip_tos=hyp(a), ip_ttl=hyp2(b))
            assert generator.generate(key).entry.action == fig4_table.classify(key)


class TestInvariants:
    def test_cover_invariant(self, fig4_table):
        """Inv(1): the generated entry always matches its packet."""
        generator = MegaflowGenerator(fig4_table, WILDCARDING)
        for a, b in itertools.product(range(8), range(16)):
            key = FlowKey(ip_tos=hyp(a), ip_ttl=hyp2(b))
            assert generator.generate(key).entry.covers(key)

    def test_independence_all_strategies(self, fig4_table):
        """Inv(2): entries pairwise disjoint under any chunking."""
        keys = [
            FlowKey(ip_tos=hyp(a), ip_ttl=hyp2(b))
            for a, b in itertools.product(range(8), range(16))
        ]
        for strategy in (
            WILDCARDING,
            EXACT_MATCH,
            StrategyConfig(default_chunks=2),
            StrategyConfig(field_chunks={"ip_tos": 1, "ip_ttl": 2}),
        ):
            cache = build_cache(fig4_table, strategy, keys, check=False)
            cache.verify_disjoint()

    def test_table_miss_produces_deny(self):
        table = FlowTable()  # no rules at all
        table.add_rule(Match(tp_dst=80), ALLOW, priority=1)
        generator = MegaflowGenerator(table)
        result = generator.generate(FlowKey(tp_dst=81))
        assert result.rule is None
        assert result.entry.action == DENY
        assert result.entry.source_rule == "<table-miss>"

    def test_rules_examined_counted(self, fig4_table):
        generator = MegaflowGenerator(fig4_table)
        assert generator.generate(FlowKey(ip_tos=hyp(0b001))).rules_examined == 1
        assert generator.generate(FlowKey(ip_tos=hyp(0b000))).rules_examined == 3


class TestChunkedStrategies:
    """Theorem 4.1: k chunks -> k masks, sum(2^b_i - 1) + 1 entries."""

    @pytest.mark.parametrize("k,expected_masks", [(1, 1), (2, 2), (3, 3)])
    def test_mask_counts_per_k(self, fig1_table, k, expected_masks):
        keys = [FlowKey(ip_tos=hyp(v)) for v in range(8)]
        strategy = StrategyConfig(field_chunks={"ip_tos": k})
        cache = build_cache(fig1_table, strategy, keys)
        assert cache.n_masks == expected_masks

    def test_k2_entry_count(self, fig1_table):
        # 3 bits in chunks of (2, 1): entries = (2^2-1) + (2^1-1) + 1 = 5.
        keys = [FlowKey(ip_tos=hyp(v)) for v in range(8)]
        cache = build_cache(fig1_table, StrategyConfig(field_chunks={"ip_tos": 2}), keys)
        assert cache.n_entries == 5

    def test_chunk_count_above_width_clamps_to_per_bit(self, fig1_table):
        keys = [FlowKey(ip_tos=hyp(v)) for v in range(8)]
        cache = build_cache(fig1_table, StrategyConfig(field_chunks={"ip_tos": 64}), keys)
        assert cache.n_masks == 3  # same as wildcarding

    def test_wide_field_threshold(self):
        strategy = OVS_DEFAULT
        assert strategy.chunks_for("ipv6_src") == 1  # exact-matched
        assert strategy.chunks_for("tp_dst") is None  # per-bit

    def test_invalid_strategies(self):
        with pytest.raises(StrategyError):
            StrategyConfig(default_chunks=0)
        with pytest.raises(StrategyError):
            StrategyConfig(field_chunks={"tp_dst": 0})
        with pytest.raises(StrategyError):
            StrategyConfig(field_chunks={"bogus": 1})
        with pytest.raises(StrategyError):
            StrategyConfig(wide_field_threshold=0)


class TestIPv6Quirk:
    """§5.4: OVS exact-matches 128-bit addresses — few masks, many entries."""

    def test_exact_match_on_ipv6(self):
        table = FlowTable()
        table.add_rule(Match(ipv6_src=42), ALLOW, priority=10, name="allow-v6")
        table.add_default_deny()
        generator = MegaflowGenerator(table, OVS_DEFAULT)
        cache = TupleSpaceSearch()
        for src in range(100):
            cache.insert(generator.generate(FlowKey(ipv6_src=src)).entry)
        # One mask (the exact v6 address), one entry per distinct source.
        assert cache.n_masks == 1
        assert cache.n_entries == 100

    def test_wildcarding_on_ipv6_for_contrast(self):
        from repro.core.tracegen import bit_inversion_list

        table = FlowTable()
        table.add_rule(Match(ipv6_src=42), ALLOW, priority=10, name="allow-v6")
        table.add_default_deny()
        generator = MegaflowGenerator(table, WILDCARDING)
        cache = TupleSpaceSearch()
        for src in bit_inversion_list(42, 128):
            cache.insert(generator.generate(FlowKey(ipv6_src=src)).entry)
        # Prefix masks instead: one mask per bit position, one entry each.
        assert cache.n_masks == 128
        assert cache.n_entries == 129
