"""Fleet layer tests: streamed tenants, rack settlement, cloudsweep."""

import numpy as np
import pytest

from repro.exceptions import ExperimentError, SimulationError
from repro.experiments import run_experiment
from repro.experiments.backendsweep import attacker_rules
from repro.netsim.cloud import MULTIQUEUE_ENV, SYNTHETIC_ENV
from repro.netsim.engine import Simulation
from repro.netsim.fleet import Fleet, FleetHost, Rack, TenantBlock, TenantStream
from repro.netsim.flows import ActiveWindow, AttackSource
from repro.packet.fields import FlowKey
from repro.switch.rss import RSS_FIELDS, five_tuple_hash, five_tuple_hash_columns

COLUMN_NAMES = ("ip_src", "ip_dst", "ip_proto", "tp_src", "tp_dst",
                "home_shard", "offered_gbps")


def blocks_equal(a: TenantBlock, b: TenantBlock) -> bool:
    return all(
        np.array_equal(getattr(a, name), getattr(b, name)) for name in COLUMN_NAMES
    )


class TestTenantStream:
    def test_same_seed_same_columns(self):
        a = TenantStream(7, 1, 2, 64, n_shards=4).build()
        b = TenantStream(7, 1, 2, 64, n_shards=4).build()
        assert blocks_equal(a, b)

    def test_different_address_different_columns(self):
        base = TenantStream(7, 1, 2, 64).build()
        for seed, rack, host in ((8, 1, 2), (7, 0, 2), (7, 1, 3)):
            other = TenantStream(seed, rack, host, 64).build()
            assert not blocks_equal(base, other)

    def test_stream_is_addressed_not_ordered(self):
        """Host (r, h)'s population is independent of construction order."""
        alone = TenantStream(3, 1, 4, 32, n_shards=4).build()
        fleet = Fleet(
            MULTIQUEUE_ENV, n_racks=2, hosts_per_rack=5,
            tenants_per_host=32, seed=3,
        )
        try:
            assert blocks_equal(alone, fleet.host(1, 4).tenants)
        finally:
            fleet.close()

    def test_home_shards_follow_rss_hash(self):
        block = TenantStream(5, 0, 0, 128, n_shards=4).build()
        for index in (0, 17, 127):
            key = block.tenant_key(index)
            assert block.home_shard[index] == five_tuple_hash(key) % 4

    def test_validation(self):
        with pytest.raises(SimulationError, match="n_tenants"):
            TenantStream(0, 0, 0, 0)


class TestHashColumns:
    def test_matches_scalar_hash(self):
        block = TenantStream(9, 0, 0, 256).build()
        columns = {name: getattr(block, name) for name in RSS_FIELDS}
        hashes = five_tuple_hash_columns(columns)
        for index in range(len(block)):
            assert int(hashes[index]) == five_tuple_hash(block.tenant_key(index))

    def test_full_field_width(self):
        """32-bit fields hash identically to the scalar byte walk."""
        keys = [
            FlowKey(ip_src=0xFFFFFFFF, ip_dst=0x01020304, ip_proto=17,
                    tp_src=65535, tp_dst=1),
            FlowKey(ip_src=0, ip_dst=0, ip_proto=0, tp_src=0, tp_dst=0),
        ]
        columns = {
            name: np.asarray([key[name] for key in keys], dtype=np.int64)
            for name in RSS_FIELDS
        }
        hashes = five_tuple_hash_columns(columns)
        assert [int(h) for h in hashes] == [five_tuple_hash(k) for k in keys]


class TestFleetDeterminism:
    def test_two_constructions_identical(self):
        fleets = [
            Fleet(SYNTHETIC_ENV, n_racks=2, hosts_per_rack=3,
                  tenants_per_host=40, seed=13)
            for _ in range(2)
        ]
        try:
            hosts_a, hosts_b = (list(f.hosts()) for f in fleets)
            assert [h.name for h in hosts_a] == [h.name for h in hosts_b]
            assert [h.attacker_ip for h in hosts_a] == [h.attacker_ip for h in hosts_b]
            for a, b in zip(hosts_a, hosts_b):
                assert blocks_equal(a.tenants, b.tenants)
        finally:
            for fleet in fleets:
                fleet.close()


class TestRackSettlement:
    def _attacked_fleet(self, **kwargs):
        fleet = Fleet(SYNTHETIC_ENV, n_racks=1, hosts_per_rack=3,
                      tenants_per_host=50, seed=2, **kwargs)
        host = fleet.host(0, 1)
        trace = host.detonation_trace(attacker_rules("SipDp"), label="SipDp")
        host.inject_attack_batch(list(trace.keys), now=0.0)
        return fleet

    def test_rack_pass_equals_per_host_pass(self):
        """One concatenated rack settlement ≡ each host settling alone."""
        racked = self._attacked_fleet()
        standalone = self._attacked_fleet()
        try:
            racked.racks[0].tick(0.0, 1.0)
            for host in standalone.hosts():
                host.tick(0.0, 1.0)
            for a, b in zip(racked.hosts(), standalone.hosts()):
                assert np.array_equal(a.tenants.assigned_gbps, b.tenants.assigned_gbps)
                assert np.array_equal(a.tenants.rate_gbps, b.tenants.rate_gbps)
        finally:
            racked.close()
            standalone.close()

    def test_vector_equals_scalar_over_a_run(self):
        results = {}
        for mode in ("vector", "scalar"):
            fleet = Fleet(SYNTHETIC_ENV, n_racks=2, hosts_per_rack=2,
                          tenants_per_host=30, seed=5, settlement_mode=mode)
            try:
                sim = Simulation(dt=0.1, mode="event")
                fleet.register(sim)
                host = fleet.host(0, 0)
                trace = host.detonation_trace(attacker_rules("SipDp"))
                sim.add(AttackSource(host=host, keys=trace.keys, pps=300.0,
                                     windows=[ActiveWindow(1.0, 5.0)], period=0.1))
                sim.run(1.0)
                fleet.start_recording()
                sim.run(6.0)
                results[mode] = (fleet.rates().copy(), fleet.floors().copy())
            finally:
                fleet.close()
        assert np.array_equal(results["vector"][0], results["scalar"][0])
        assert np.array_equal(results["vector"][1], results["scalar"][1])

    def test_attack_degrades_only_attacked_host(self):
        fleet = self._attacked_fleet()
        try:
            fleet.racks[0].tick(0.0, 1.0)
            idle = fleet.host(0, 0).tenants.assigned_gbps
            hit = fleet.host(0, 1).tenants.assigned_gbps
            assert hit.mean() < 0.2 * idle.mean()
            assert fleet.host(0, 2).tenants.assigned_gbps.mean() > 0.5 * idle.mean()
        finally:
            fleet.close()

    def test_event_mode_matches_fixed_at_equal_cadence(self):
        """rack_period == dt: the heap scheduler ≡ the fixed-step loop."""
        results = {}
        for mode in ("fixed", "event"):
            fleet = Fleet(SYNTHETIC_ENV, n_racks=1, hosts_per_rack=2,
                          tenants_per_host=25, seed=8, rack_period=0.1)
            try:
                sim = Simulation(dt=0.1, mode=mode)
                fleet.register(sim)
                host = fleet.host(0, 0)
                trace = host.detonation_trace(attacker_rules("SipDp"))
                sim.add(AttackSource(host=host, keys=trace.keys, pps=200.0,
                                     period=0.1))
                fleet.start_recording()
                sim.run(4.0)
                results[mode] = (fleet.rates().copy(), fleet.floors().copy())
            finally:
                fleet.close()
        assert np.array_equal(results["fixed"][0], results["event"][0])
        assert np.array_equal(results["fixed"][1], results["event"][1])

    def test_empty_rack_rejected(self):
        with pytest.raises(SimulationError, match="no hosts"):
            Rack("r", [])


class TestFleetReadouts:
    def test_floor_quantiles_require_recording(self):
        fleet = Fleet(SYNTHETIC_ENV, n_racks=1, hosts_per_rack=1,
                      tenants_per_host=10, seed=0)
        try:
            with pytest.raises(SimulationError, match="recorded"):
                fleet.floor_quantiles()
            fleet.start_recording()
            fleet.racks[0].tick(0.0, 1.0)
            quantiles = fleet.floor_quantiles((50.0,))
            assert quantiles[50.0] > 0
            assert fleet.tenant_count == 10
        finally:
            fleet.close()


class TestCloudsweepExperiment:
    def test_smoke_run(self):
        result = run_experiment(
            "cloudsweep",
            n_racks=1,
            hosts_per_rack=3,
            tenants_per_host=20,
            duration=8.0,
            attack_start=2.0,
            attack_stop=6.0,
            attack_pps=300.0,
        )
        assert result.experiment_id == "cloudsweep"
        assert result.column("plan") == ["spread", "concentrated"]
        spread, concentrated = result.rows
        columns = list(result.columns)
        assert spread[columns.index("attacked_hosts")] == 3
        assert concentrated[columns.index("attacked_hosts")] == 1
        # The concentrated detonation must bite its host's tenants.
        attacked_p50 = concentrated[columns.index("attacked_floor_p50_gbps")]
        baseline_p50 = concentrated[columns.index("baseline_p50_gbps")]
        assert attacked_p50 < baseline_p50
        assert result.format_table()

    def test_bad_environment_rejected(self):
        with pytest.raises(ExperimentError, match="unknown environment"):
            run_experiment("cloudsweep", environment_name="AWS")

    def test_bad_plan_rejected(self):
        from repro.experiments.cloudsweep import run_plan

        with pytest.raises(ExperimentError, match="unknown plan"):
            run_plan("everywhere", n_racks=1, hosts_per_rack=1,
                     tenants_per_host=5)
