"""Integration tests: every experiment harness runs and matches the paper.

Simulation experiments run with reduced durations/sizes here; the
full-size versions are the pytest-benchmark targets.
"""

import pytest

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments import (
    comparison,
    didactic,
    fig8a,
    fig8b,
    fig8c,
    fig9a,
    fig9b,
    fig9c,
    ipv6_quirk,
    mfcguard,
    section54,
    section62,
    section7,
    table1,
    theorem41,
    theorem42,
)
from repro.exceptions import ExperimentError


class TestRegistry:
    def test_all_twenty_one_experiments(self):
        assert len(EXPERIMENTS) == 21
        assert "pmdsweep" in EXPERIMENTS
        assert "backendsweep" in EXPERIMENTS
        assert "cloudsweep" in EXPERIMENTS
        assert "migrationsweep" in EXPERIMENTS
        assert "rsssweep" in EXPERIMENTS

    def test_run_by_id(self):
        result = run_experiment("table1")
        assert result.experiment_id == "table1"

    def test_every_result_formats(self):
        result = table1.run()
        text = result.format_table()
        assert "table1" in text
        assert "OpenStack" in text

    def test_save(self, tmp_path):
        path = table1.run().save(tmp_path)
        assert path.read_text().startswith("== table1")

    def test_row_arity_checked(self):
        from repro.experiments.common import ExperimentResult

        result = ExperimentResult("x", "t", "ref", columns=["a", "b"])
        with pytest.raises(ExperimentError):
            result.add_row(1)

    def test_column_lookup(self):
        from repro.experiments.common import ExperimentResult

        result = ExperimentResult("x", "t", "ref", columns=["a", "b"])
        result.add_row(1, 2)
        assert result.column("b") == [2]
        with pytest.raises(ExperimentError):
            result.column("c")


class TestDidactic:
    def test_figs_2_3_5_counts(self):
        result = didactic.run()
        rows = {row[0]: row for row in result.rows}
        assert rows["Fig. 2 (exact-match)"][2:4] == (1, 8)
        assert rows["Fig. 3 (wildcarding)"][2:4] == (3, 4)
        assert rows["Fig. 5 (two fields)"][2:4] == (13, 16)

    def test_trace_note_matches_paper(self):
        result = didactic.run()
        assert any("001, 101, 011, 000" in note for note in result.notes)


class TestFig9a:
    def test_shape(self):
        result = fig9a.run(mask_counts=(1, 17, 260, 516, 8200))
        gro_off = result.column("gro_off_gbps")
        assert gro_off[0] == pytest.approx(10.0, rel=0.05)
        assert gro_off == sorted(gro_off, reverse=True)
        # §5.4: SipSpDp leaves 0.2% with GRO OFF.
        assert gro_off[-1] == pytest.approx(0.02, rel=0.3)

    def test_fho_higher_baseline(self):
        result = fig9a.run(mask_counts=(1,))
        assert result.column("fho_gbps")[0] == pytest.approx(30.0, rel=0.05)

    def test_fct_grows(self):
        result = fig9a.run(mask_counts=(1, 516))
        fct = result.column("fct_1gb_s")
        assert fct[1] > 10 * fct[0]


class TestFig9b:
    def test_expected_vs_measured_agree(self):
        result = fig9b.run(packet_counts=(100, 2000), runs=2, seed=1)
        for name in ("Dp", "SipDp"):
            expected = result.column(f"{name}_E")
            measured = result.column(f"{name}_M")
            for e, m in zip(expected, measured):
                assert m == pytest.approx(e, rel=0.25)


class TestFig9c:
    def test_anchors(self):
        result = fig9c.run(rates=(1000, 10000), simulate_up_to=0)
        cpu = result.column("cpu_pct")
        assert cpu[0] == pytest.approx(15.0, abs=1.0)
        assert cpu[1] == pytest.approx(80.0, abs=2.0)

    def test_simulated_demotion_near_rate(self):
        result = fig9c.run(rates=(500,), simulate_up_to=1000)
        demoted = result.column("demoted_pps_simulated")[0]
        assert demoted == pytest.approx(500, rel=0.15)


class TestSection54:
    def test_mask_ceilings(self):
        result = section54.run()
        by_case = {row[0]: row for row in result.rows}
        assert by_case["Dp"][2] == 16
        assert by_case["SipSpDp"][2] == 8209

    def test_throughput_close_to_paper(self):
        result = section54.run()
        for row in result.rows:
            case, *_rest = row
            gro_off_pct = row[result.columns.index("gro_off_pct")]
            paper = row[result.columns.index("paper_gro_off")]
            assert gro_off_pct == pytest.approx(paper, rel=0.35), case


class TestSection62:
    def test_measured_tracks_expected(self):
        result = section62.run(budgets=(1000,), runs=2)
        for row in result.rows:
            measured = row[result.columns.index("masks_measured")]
            expected = row[result.columns.index("masks_expected")]
            assert measured == pytest.approx(expected, rel=0.25)


class TestTheorems:
    def test_theorem41_bound_respected(self):
        result = theorem41.run(width=16, constructive_width=8)
        for row in result.rows:
            _k, bound, construct, _bm, _be = row
            assert construct >= bound

    def test_theorem41_exhaustive_matches(self):
        result = theorem41.run(width=8, constructive_width=8)
        for row in result.rows:
            _k, _bound, construct, built_masks, built_entries = row
            assert built_entries == construct

    def test_theorem42_closed_form_matches_cache(self):
        result = theorem42.run(check_widths=(3, 4, 3))
        note = result.notes[0]
        assert "built" in note
        # The note embeds built vs closed numbers; parse and compare.
        import re

        numbers = [int(x) for x in re.findall(r"\d+", note.split("built")[1])]
        built_masks, built_entries, closed_masks, closed_entries = numbers[:4]
        assert (built_masks, built_entries) == (closed_masks, closed_entries)


class TestIPv6Quirk:
    def test_exact_strategy_blows_memory_not_masks(self):
        result = ipv6_quirk.run(n_packets=3000, seed=1)
        rows = {row[0]: row for row in result.rows}
        exact = rows["ovs-default (v6 exact)"]
        wild = rows["bit-wildcarding"]
        assert exact[1] < 40          # masks stay tiny
        assert exact[2] > 2500        # one entry per random source
        assert wild[1] > exact[1]     # wildcarding spawns masks instead
        assert wild[2] < exact[2] / 5
        assert exact[3] > wild[3]     # memory blow-up


class TestComparison:
    def test_tss_degrades_alternatives_do_not(self):
        result = comparison.run(benign_packets=300)
        by_name = {row[0]: row for row in result.rows}
        degradation = result.columns.index("degradation_x")
        assert by_name["tss-cache"][degradation] > 100
        # The grouped cache inherits the same exploded mask list but keeps
        # probing it in near-constant chain steps.
        assert by_name["tuplechain-cache"][degradation] < by_name["tss-cache"][degradation] / 10
        for name in ("linear", "hierarchical-tries", "hypercuts", "harp"):
            assert by_name[name][degradation] == pytest.approx(1.0, abs=0.05)


class TestBackendSweep:
    def test_backends_agree_and_grouped_stays_bounded(self):
        from repro.experiments import backendsweep

        result = backendsweep.run(benign_packets=200)
        assert any("IDENTICAL" in note for note in result.notes)
        by_name = {row[0]: row for row in result.rows}
        masks = result.columns.index("masks")
        after = result.columns.index("benign_after_probe")
        degradation = result.columns.index("degradation_x")
        # Same detonation installed either way; only the scan cost differs.
        assert by_name["tss"][masks] == by_name["tuplechain"][masks] == 513
        assert by_name["tss"][after] > by_name["tuplechain"][after] * 2
        assert by_name["tuplechain"][degradation] < by_name["tss"][degradation] / 10
        # The netsim time series prices each victim in its backend's probe
        # units: the grouped victim keeps throughput where TSS's starves.
        floor = result.columns.index("victim_floor_gbps")
        cost = result.columns.index("scan_cost_units")
        assert by_name["tuplechain"][floor] > 4 * by_name["tss"][floor]
        assert by_name["tss"][cost] == 513.0
        assert by_name["tuplechain"][cost] < 513.0 / 4

    def test_netsim_phase_optional(self):
        from repro.experiments import backendsweep

        result = backendsweep.run(benign_packets=100, netsim=False)
        assert "victim_floor_gbps" not in result.columns


@pytest.mark.slow
class TestTimeSeries:
    """Reduced-duration versions of the Fig. 8 simulations."""

    def test_fig8a_shape(self):
        result = fig8a.run(duration=55.0, attack_start=15.0, attack_stop=35.0,
                           sample_every=1.0)
        times = result.column("t_s")
        sums = result.column("victim_sum_gbps")
        baseline = max(v for t, v in zip(times, sums) if t < 15)
        floor = min(v for t, v in zip(times, sums) if 20 <= t < 35)
        recovered = max(v for t, v in zip(times, sums) if t > 50)
        assert baseline > 9.0           # ~9.7 Gbps
        assert floor < 0.6              # below 0.5 Gbps
        assert recovered > 0.8 * baseline
        # Recovery is *delayed* ~10 s past attack stop (idle timeout).
        at_40 = next(v for t, v in zip(times, sums) if 40 <= t < 41)
        assert at_40 < 0.3 * baseline

    def test_fig8b_established_flow_quirk(self):
        result = fig8b.run(duration=80.0, victim_start=10.0,
                           attack_windows=((0.0, 30.0), (60.0, 80.0)),
                           sample_every=1.0)
        times = result.column("t_s")
        rates = result.column("victim_gbps")
        first = min(v for t, v in zip(times, rates) if 12 <= t < 30)
        calm = max(v for t, v in zip(times, rates) if 45 <= t < 60)
        re_attack = min(v for t, v in zip(times, rates) if 66 <= t < 80)
        assert first < 0.1 * calm          # >90% degradation
        assert re_attack > 0.75 * calm     # ~10% dip only

    def test_fig8c_three_phases(self):
        result = fig8c.run(duration=100.0, victim_start=5.0, t1_attack_start=20.0,
                           t2_acl_injection=40.0, t4_escalation=70.0,
                           sample_every=1.0)
        times = result.column("t_s")
        rates = result.column("victim_gbps")
        pre = min(v for t, v in zip(times, rates) if 25 <= t < 40)
        post_acl = [v for t, v in zip(times, rates) if 55 <= t < 70]
        final = [v for t, v in zip(times, rates) if 85 <= t < 100]
        assert pre > 0.7                    # minor glitch only
        assert 0.05 < min(post_acl) and max(post_acl) < 0.35  # ~80% drop
        assert max(final) < 0.05            # full DoS
        masks = result.column("mfc_masks")
        assert max(masks) == 8209

    def test_mfcguard_restores_service(self):
        result = mfcguard.run(duration=45.0, attack_start=10.0, sample_every=2.0)
        guard_rates = result.column("victim_gbps_guard")
        noguard_rates = result.column("victim_gbps_noguard")
        times = result.column("t_s")
        late_guard = [v for t, v in zip(times, guard_rates) if t > 35]
        late_noguard = [v for t, v in zip(times, noguard_rates) if t > 35]
        assert max(late_guard) > 5 * max(late_noguard)
        masks_guard = result.column("masks_guard")
        assert min(masks_guard[-3:]) < 150


class TestSection7:
    def test_expressiveness_ceilings(self):
        result = section7.run(random_budget=1000)
        ceilings = result.column("max_masks")
        assert ceilings[0] == 513          # OpenStack ingress (paper: 512)
        assert ceilings[1] == 8209         # Calico ingress (paper: 8192)
        assert 200_000 < ceilings[2] < 300_000  # Calico egress (~200k)

    def test_expectations_monotone_in_surface(self):
        result = section7.run(random_budget=1000)
        expectations = result.column("expected_masks_1000_random")
        assert expectations == sorted(expectations)
