"""Unit tests for the revalidator (idle eviction + flow-limit pressure)."""

import pytest

from repro.classifier.actions import ALLOW
from repro.classifier.backend import megaflow_backend_names
from repro.classifier.flowtable import FlowTable
from repro.classifier.rule import Match
from repro.exceptions import SwitchError
from repro.packet.fields import FlowKey
from repro.switch.datapath import Datapath, DatapathConfig
from repro.switch.revalidator import REVALIDATE_UNITS_PER_ENTRY, Revalidator


# The revalidator drives caches through the MegaflowBackend protocol only
# (n_megaflows / evict_idle / entries / kill_entry), so every test in this
# module runs over each registered backend.
@pytest.fixture(params=megaflow_backend_names())
def datapath(request) -> Datapath:
    table = FlowTable()
    table.add_rule(Match(ip_proto=6, tp_dst=80), ALLOW, priority=10, name="allow")
    table.add_default_deny()
    return Datapath(
        table,
        DatapathConfig(
            microflow_capacity=0, idle_timeout=10.0, megaflow_backend=request.param
        ),
    )


class TestSweeps:
    def test_tick_respects_period(self, datapath):
        revalidator = Revalidator(datapath, period=1.0)
        datapath.process(FlowKey(ip_proto=6, tp_dst=80), now=0.0)
        assert revalidator.tick(0.5) == []  # before first scheduled sweep
        revalidator.tick(1.0)
        assert revalidator.stats.sweeps == 1
        revalidator.tick(1.5)  # too early for the next one
        assert revalidator.stats.sweeps == 1

    def test_idle_entries_evicted_after_timeout(self, datapath):
        revalidator = Revalidator(datapath, period=1.0)
        datapath.process(FlowKey(ip_proto=6, tp_dst=80), now=0.0)
        assert revalidator.sweep(9.0) == []  # not yet idle long enough
        evicted = revalidator.sweep(10.0)
        assert len(evicted) == 1
        assert revalidator.stats.evicted_idle == 1

    def test_active_entries_survive(self, datapath):
        revalidator = Revalidator(datapath, period=1.0)
        key = FlowKey(ip_proto=6, tp_dst=80)
        for t in range(0, 30, 5):
            datapath.process(key, now=float(t))
            assert revalidator.sweep(float(t)) == []
        assert datapath.n_megaflows == 1

    def test_invalid_period(self, datapath):
        with pytest.raises(SwitchError):
            Revalidator(datapath, period=0)


class TestFlowLimitPressure:
    @pytest.mark.parametrize("backend", megaflow_backend_names())
    def test_lru_evicted_above_limit(self, backend):
        from repro.core.tracegen import bit_inversion_list

        table = FlowTable()
        table.add_rule(Match(tp_dst=80), ALLOW, priority=10, name="allow")
        table.add_default_deny()
        datapath = Datapath(
            table,
            DatapathConfig(
                microflow_capacity=0, max_megaflows=1000, megaflow_backend=backend
            ),
        )
        revalidator = Revalidator(datapath, period=1.0)
        # Distinct megaflows: one per inverted bit of the allowed value.
        for i, value in enumerate(bit_inversion_list(80, 16)[1:6]):
            datapath.process(FlowKey(ip_proto=6, tp_dst=value), now=float(i))
        # Shrink the limit mid-flight (models revalidator pressure).
        datapath.config = DatapathConfig(
            microflow_capacity=0, max_megaflows=3
        )
        revalidator.sweep(now=5.0)
        assert datapath.n_megaflows == 3
        assert revalidator.stats.evicted_limit == 2
        # The oldest (LRU) entries went first.
        remaining = sorted(e.last_used for e in datapath.megaflows.entries())
        assert remaining == [2.0, 3.0, 4.0]

    def test_work_units_accounting(self, datapath):
        revalidator = Revalidator(datapath, period=1.0)
        datapath.process(FlowKey(ip_proto=6, tp_dst=80), now=0.0)
        assert revalidator.sweep_work_units() == REVALIDATE_UNITS_PER_ENTRY
        revalidator.sweep(1.0)
        assert revalidator.stats.work_units == REVALIDATE_UNITS_PER_ENTRY
