"""Executor-equivalence tests: parallel ≡ serial for every strategy.

The executor invariants under test (see ROADMAP.md):

* ``thread`` and ``process`` executors produce identical verdicts,
  ``mask_counts``/``probe_costs``/``shard_ids``, installed entry/mask
  unions, per-shard statistics and probe accounting
  (``stats_scans``/``stats_scan_probes``) as ``serial`` — across megaflow
  backends and worker counts;
* flow-table changes reach worker-owned shards as delta messages with the
  serial flush cadence (one parent change = one flush per shard);
* the management plane (revalidator, MFCGuard, dpctl) drives worker-owned
  shards through value-addressed proxies with unchanged outcomes;
* hypervisor charges (victim rates, CPU load) are executor-invariant.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classifier.actions import ALLOW, DENY
from repro.classifier.backend import megaflow_backend_names
from repro.classifier.flowtable import FlowTable
from repro.classifier.rule import Match
from repro.core.mitigation import MFCGuard, MFCGuardConfig
from repro.core.tracegen import ColocatedTraceGenerator
from repro.core.usecases import SIPDP
from repro.exceptions import ExecutorError, SwitchError
from repro.netsim.cloud import SYNTHETIC_ENV, EnvironmentProfile, Server
from repro.netsim.hypervisor import HypervisorHost
from repro.packet.fields import FlowKey
from repro.packet.headers import PROTO_TCP
from repro.switch.datapath import Datapath, DatapathConfig
from repro.switch.dpctl import dump_flows, show
from repro.switch.executor import (
    ProcessShardExecutor,
    make_shard_executor,
    shard_executor_names,
)
from repro.switch.revalidator import Revalidator
from repro.switch.sharded import ShardedDatapath
from repro.switch.shm_ring import (
    ShmRing,
    decode_batch,
    decode_verdicts,
    encode_batch,
    encode_verdicts,
)

BACKENDS = megaflow_backend_names()
PARALLEL = ("thread", "process")


def small_table() -> FlowTable:
    table = FlowTable()
    table.add_rule(Match(tp_dst=(80, 0xFFFF)), ALLOW, priority=10, name="allow-80")
    table.add_rule(
        Match(ip_src=(0x0A000000, 0xFFFFFF00)), ALLOW, priority=5, name="allow-net"
    )
    table.add_default_deny()
    return table


def staircase_replay(extra: int = 120) -> tuple[FlowTable, list[FlowKey]]:
    """SipDp's ~500-mask detonation plus random replay noise."""
    table = SIPDP.build_table()
    trace = ColocatedTraceGenerator(table, base={"ip_proto": PROTO_TCP}).generate()
    rng = np.random.default_rng(7)
    noise = [
        FlowKey(
            ip_src=int(rng.integers(0, 1 << 32)),
            tp_src=int(rng.integers(0, 1 << 16)),
            tp_dst=int(rng.integers(0, 1 << 16)),
            ip_proto=PROTO_TCP,
        )
        for _ in range(extra)
    ]
    keys = list(trace.keys) + noise + list(trace.keys)[: len(trace) // 2]
    return table, keys


def build(
    executor: str,
    table: FlowTable,
    n_shards: int = 2,
    backend: str = "tss",
    workers: int = 0,
    **config_kwargs,
) -> ShardedDatapath:
    config = DatapathConfig(
        microflow_capacity=0,
        megaflow_backend=backend,
        executor=executor,
        executor_workers=workers,
        **config_kwargs,
    )
    return ShardedDatapath(table, config, n_shards=n_shards)


def assert_equivalent(
    reference: ShardedDatapath, other: ShardedDatapath, expected, got, label: str
) -> None:
    """Full transcript + state equality between two executor runs."""
    assert got.shard_ids == expected.shard_ids, label
    assert got.mask_counts == expected.mask_counts, label
    assert got.probe_costs == expected.probe_costs, label
    for i, (a, b) in enumerate(zip(expected.verdicts, got.verdicts)):
        assert a.action == b.action, (label, i)
        assert a.path == b.path, (label, i)
        assert a.masks_inspected == b.masks_inspected, (label, i)
        assert a.rules_examined == b.rules_examined, (label, i)
        assert (a.installed is None) == (b.installed is None), (label, i)
        if a.installed is not None:
            assert a.installed.mask == b.installed.mask, (label, i)
            assert a.installed.key == b.installed.key, (label, i)
    # Installed entry / mask unions.
    assert {(e.mask.values, e.key) for e in other.entries()} == {
        (e.mask.values, e.key) for e in reference.entries()
    }, label
    assert other.n_masks == reference.n_masks, label
    # Per-shard statistics and probe accounting.
    for shard_id, (ref_shard, got_shard) in enumerate(
        zip(reference.shards, other.shards)
    ):
        assert got_shard.stats == ref_shard.stats, (label, shard_id)
        assert got_shard.megaflows.stats_hits == ref_shard.megaflows.stats_hits
        assert got_shard.megaflows.stats_misses == ref_shard.megaflows.stats_misses
        assert got_shard.megaflows.stats_scans == ref_shard.megaflows.stats_scans
        assert (
            got_shard.megaflows.stats_scan_probes
            == ref_shard.megaflows.stats_scan_probes
        ), (label, shard_id)


class TestVerdictEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("executor", PARALLEL)
    def test_staircase_replay_equivalence(self, executor, backend):
        """thread/process ≡ serial on a real detonation, per backend."""
        table, keys = staircase_replay()
        reference = build("serial", table, n_shards=2, backend=backend)
        expected = reference.process_batch(keys, now=1.0)
        other = build(executor, FlowTable(rules=list(table)), n_shards=2, backend=backend)
        try:
            got = other.process_batch(keys, now=1.0)
            assert_equivalent(reference, other, expected, got, f"{executor}/{backend}")
        finally:
            other.close()

    @pytest.mark.parametrize("executor", PARALLEL)
    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_worker_count_equivalence(self, executor, workers):
        """Any worker count (shards per worker ≥ 1) reproduces serial."""
        table, keys = staircase_replay(extra=40)
        reference = build("serial", table, n_shards=3)
        expected = reference.process_batch(keys)
        other = build(executor, FlowTable(rules=list(table)), n_shards=3, workers=workers)
        try:
            got = other.process_batch(keys)
            assert_equivalent(
                reference, other, expected, got, f"{executor}/workers={workers}"
            )
        finally:
            other.close()

    @settings(max_examples=12, deadline=None)
    @given(
        data=st.lists(
            st.tuples(
                st.integers(0, 0xFFFFFFFF),  # ip_src
                st.integers(0, 0xFFFF),  # tp_src
                st.sampled_from([80, 81, 443]),  # tp_dst
            ),
            min_size=1,
            max_size=48,
        ),
        n_shards=st.integers(1, 4),
    )
    def test_thread_equivalence_property(self, data, n_shards):
        """Hypothesis: arbitrary small traces are thread ≡ serial."""
        keys = [
            FlowKey(ip_src=src, tp_src=sport, tp_dst=dport, ip_proto=PROTO_TCP)
            for src, sport, dport in data
        ]
        reference = build("serial", small_table(), n_shards=n_shards)
        expected = reference.process_batch(keys)
        other = build("thread", small_table(), n_shards=n_shards)
        try:
            got = other.process_batch(keys)
            assert_equivalent(reference, other, expected, got, "thread-property")
        finally:
            other.close()

    def test_microflow_and_mask_cache_levels(self):
        """Fast levels (microflow, kernel memo) stay executor-invariant."""
        table, keys = staircase_replay(extra=20)
        config = dict(enable_mask_cache=True, mask_cache_size=32)
        reference = ShardedDatapath(
            table,
            DatapathConfig(microflow_capacity=64, executor="serial", **config),
            n_shards=2,
        )
        expected = reference.process_batch(keys)
        other = ShardedDatapath(
            FlowTable(rules=list(table)),
            DatapathConfig(microflow_capacity=64, executor="process", **config),
            n_shards=2,
        )
        try:
            got = other.process_batch(keys)
            assert_equivalent(reference, other, expected, got, "fast-levels")
        finally:
            other.close()


class TestFlowTableDeltas:
    @pytest.mark.parametrize("executor", PARALLEL)
    def test_rule_changes_reach_every_shard(self, executor):
        """add / extend / remove / clear all flush worker replicas once."""
        table_a, keys = staircase_replay(extra=0)
        table_b = FlowTable(rules=list(table_a))
        reference = build("serial", table_a, n_shards=2)
        other = build(executor, table_b, n_shards=2)
        try:
            for datapath in (reference, other):
                datapath.process_batch(keys)
            assert other.n_megaflows == reference.n_megaflows > 0

            late_a = table_a.add_rule(
                Match(tp_dst=(9999, 0xFFFF)), DENY, priority=2000, name="late"
            )
            late_b = table_b.add_rule(
                Match(tp_dst=(9999, 0xFFFF)), DENY, priority=2000, name="late"
            )
            assert reference.n_megaflows == other.n_megaflows == 0
            assert [s.stats.flushes for s in other.shards] == [
                s.stats.flushes for s in reference.shards
            ] == [1, 1]

            # The new rule participates in classification on both sides.
            probe = FlowKey(ip_src=1, tp_dst=9999, ip_proto=PROTO_TCP)
            assert (
                other.process(probe).action == reference.process(probe).action == DENY
            )

            table_a.remove(late_a)
            table_b.remove(late_b)
            assert (
                other.process(probe).action == reference.process(probe).action
            )
            assert [s.stats.flushes for s in other.shards] == [
                s.stats.flushes for s in reference.shards
            ]

            table_a.clear()
            table_b.clear()
            assert [s.stats.flushes for s in other.shards] == [
                s.stats.flushes for s in reference.shards
            ]
        finally:
            other.close()


class TestManagementPlane:
    @pytest.mark.parametrize("executor", PARALLEL)
    def test_guard_cleans_worker_shards(self, executor):
        """MFCGuard's delete pass works by value through the proxies."""
        reports = {}
        datapaths = {}
        for name in ("serial", executor):
            table, keys = staircase_replay(extra=0)
            datapath = build(name, table, n_shards=2)
            datapath.process_batch(list(keys))
            guard = MFCGuard(
                datapath, MFCGuardConfig(mask_threshold=50, cpu_threshold_pct=900)
            )
            reports[name] = guard.run(now=10.0)
            datapaths[name] = datapath
        try:
            assert reports[executor].entries_deleted == reports["serial"].entries_deleted > 0
            assert reports[executor].masks_after == reports["serial"].masks_after
            assert datapaths[executor].n_masks == datapaths["serial"].n_masks
            # §8 quirk survives the process boundary: killed entries never
            # re-spark in the owning worker.
            assert (
                datapaths[executor].stats.dead_entry_suppressed
                == datapaths["serial"].stats.dead_entry_suppressed
            )
        finally:
            datapaths[executor].close()

    @pytest.mark.parametrize("executor", PARALLEL)
    def test_revalidator_sweeps_worker_shards(self, executor):
        table = small_table()
        datapath = build(executor, table, n_shards=2, max_megaflows=1000)
        try:
            keys = [FlowKey(ip_src=i, tp_dst=80, ip_proto=6) for i in range(48)]
            datapath.process_batch(keys, now=0.0)
            installed = datapath.n_megaflows
            assert installed > 0
            revalidator = Revalidator(datapath, period=1.0)
            evicted = revalidator.sweep(now=100.0)  # everything idle > 10s
            assert len(evicted) == installed
            assert datapath.n_megaflows == 0
        finally:
            datapath.close()

    def test_dpctl_renders_executor_and_proxied_shards(self):
        table, keys = staircase_replay(extra=0)
        datapath = build("process", table, n_shards=2)
        try:
            datapath.process_batch(keys)
            text = show(datapath)
            assert "pmd executor: process[2 workers]" in text
            assert "pmd queue 0:" in text and "pmd queue 1:" in text
            flows = dump_flows(datapath)
            assert flows.count("pmd queue") == 2
        finally:
            datapath.close()

    def test_kill_and_reinject_by_value(self):
        table = small_table()
        reference = build("serial", table, n_shards=2)
        other = build("process", FlowTable(rules=list(table)), n_shards=2)
        try:
            key = FlowKey(ip_src=3, tp_dst=80, ip_proto=6)
            for datapath in (reference, other):
                datapath.process(key)
            # The proxy returns a copy; killing through it must remove the
            # worker's entry and engage the permanent-death quirk.
            proxy_copy = next(iter(other.entries()))
            local_entry = next(iter(reference.entries()))
            assert other.kill_entry(proxy_copy, permanent=True)
            assert reference.kill_entry(local_entry, permanent=True)
            for datapath in (reference, other):
                verdict = datapath.process(key)
                assert verdict.installed is None  # dead entries never re-spark
            # Reinject (also by value) restores installability on both.
            other.reinject(proxy_copy)
            reference.reinject(local_entry)
            for datapath in (reference, other):
                verdict = datapath.process(key)
                assert verdict.installed is not None
        finally:
            other.close()


class TestConfigPlumbing:
    def test_unknown_executor_rejected(self):
        with pytest.raises(SwitchError, match="unknown shard executor"):
            make_shard_executor("warp-drive")

    def test_registry_names(self):
        assert set(shard_executor_names()) >= {"serial", "thread", "process"}

    def test_environment_profile_threads_executor(self):
        from dataclasses import replace

        environment = replace(
            SYNTHETIC_ENV, name="Synthetic/exec", n_pmd=2, executor="process"
        )
        assert isinstance(environment, EnvironmentProfile)
        server = Server("s1", environment)
        try:
            assert isinstance(server.datapath, ShardedDatapath)
            assert server.datapath.executor_name == "process[2 workers]/shm"
            assert isinstance(server.datapath.executor, ProcessShardExecutor)
        finally:
            server.close()

    def test_close_is_idempotent_and_context_managed(self):
        table = small_table()
        with build("process", table, n_shards=2) as datapath:
            datapath.process(FlowKey(ip_src=1, tp_dst=80, ip_proto=6))
        datapath.close()  # second close is a no-op
        # A closed pool refuses further batches.
        with pytest.raises(SwitchError):
            datapath.process_batch([FlowKey(ip_src=2, tp_dst=80, ip_proto=6)])


class TestHypervisorCharges:
    @pytest.mark.parametrize("executor", PARALLEL)
    def test_victim_rates_and_load_executor_invariant(self, executor):
        """Per-core accounting is identical whatever executes the shards."""

        def run(name: str) -> HypervisorHost:
            table = SIPDP.build_table()
            datapath = build(name, table, n_shards=2)
            host = HypervisorHost(datapath, SYNTHETIC_ENV.cost_model)
            host.register_victim(
                "v", (FlowKey(ip_src=5, ip_proto=6, tp_src=52000, tp_dst=80),)
            )
            host.victim_started("v", 0.0)
            trace = ColocatedTraceGenerator(
                table, base={"ip_proto": PROTO_TCP}
            ).generate()
            host.inject_attack_batch(list(trace.keys), now=0.0)
            host.keepalive("v", 0.0)
            host.tick(0.0, 0.1)
            return host

        a, b = run("serial"), run(executor)
        try:
            assert b.victim_rate("v") == pytest.approx(a.victim_rate("v"), rel=1e-12)
            assert b.cpu_load_fraction == pytest.approx(a.cpu_load_fraction, rel=1e-12)
            assert b.per_core_load == pytest.approx(a.per_core_load, rel=1e-12)
        finally:
            b.datapath.close()


class TestShmTransport:
    """The zero-copy shared-memory data plane (repro.switch.shm_ring)."""

    def test_ring_roundtrip_and_wraparound(self):
        ring = ShmRing.create(4096)
        try:
            assert ring.try_read() is None
            assert ring.try_write([b"hello ", b"world"])
            assert ring.try_read() == b"hello world"
            assert ring.try_read() is None
            # Records eventually straddle the end of the buffer; payloads
            # must survive the split copy for many laps.
            rng = np.random.default_rng(3)
            for lap in range(64):
                blob = rng.integers(0, 256, size=int(rng.integers(1, 3000))).astype(
                    np.uint8
                ).tobytes()
                assert ring.try_write([blob]), lap
                assert ring.try_read() == blob, lap
        finally:
            ring.close()

    def test_ring_rejects_oversized_and_fills_up(self):
        ring = ShmRing.create(4096)
        try:
            assert not ring.try_write([b"x" * (ring.capacity + 1)])
            written = 0
            while ring.try_write([b"y" * 512]):
                written += 1
            assert written >= 3  # several records fit...
            assert ring.try_read() == b"y" * 512  # ...and drain FIFO
            assert ring.try_write([b"z" * 512])  # freed space is reusable
        finally:
            ring.close()

    def test_torn_batch_detected_by_sequence_number(self):
        ring = ShmRing.create(8192)
        try:
            keys = [FlowKey(ip_src=1, tp_dst=80, ip_proto=6)]
            assert encode_batch(ring, 7, [(0, keys)], 1.0)
            with pytest.raises(SwitchError, match="out of sequence"):
                decode_batch(ring.try_read(), 8)
            bv = Datapath(
                small_table(), DatapathConfig(microflow_capacity=0)
            ).process_batch(keys)
            assert encode_verdicts(ring, 9, [(0, bv)])
            with pytest.raises(SwitchError, match="out of sequence"):
                decode_verdicts(ring.try_read(), 10)
        finally:
            ring.close()

    def test_pipe_transport_equivalence(self):
        """transport="pipe" (the PR 5 path) stays verdict-identical."""
        table, keys = staircase_replay(extra=40)
        reference = build("serial", table, n_shards=2)
        expected = reference.process_batch(keys, now=1.0)
        other = build(
            "process",
            FlowTable(rules=list(table)),
            n_shards=2,
            executor_transport="pipe",
        )
        try:
            assert other.executor.transport == "pipe"
            assert other.executor_name.endswith("/pipe")
            got = other.process_batch(keys, now=1.0)
            assert_equivalent(reference, other, expected, got, "pipe-transport")
        finally:
            other.close()

    def test_oversized_batch_falls_back_to_pipe(self):
        """A batch too big for its ring ships over the pipe, same verdicts."""
        table, keys = staircase_replay(extra=40)
        reference = build("serial", table, n_shards=2)
        expected = reference.process_batch(keys, now=1.0)
        executor = ProcessShardExecutor(transport="shm", ring_bytes=4096)
        other = ShardedDatapath(
            FlowTable(rules=list(table)),
            DatapathConfig(microflow_capacity=0, executor="process"),
            n_shards=2,
            executor=executor,
        )
        try:
            # ~600 keys x 15 columns x 8 bytes per shard — far over 4 KiB
            # of ring, so every doorbell attempt must take the pipe path.
            got = other.process_batch(keys, now=1.0)
            assert_equivalent(reference, other, expected, got, "ring-overflow")
        finally:
            other.close()

    def test_worker_info_reports_transport_and_pinning(self):
        table = small_table()
        executor = ProcessShardExecutor(workers=2, transport="shm", pinning=(0, 0))
        datapath = ShardedDatapath(
            table,
            DatapathConfig(microflow_capacity=0, executor="process"),
            n_shards=2,
            executor=executor,
        )
        try:
            info = executor.worker_info()
            assert [w["shards"] for w in info] == [(0,), (1,)]
            assert all(w["transport"] == "shm" for w in info)
            # CPU 0 exists everywhere; pinning is best-effort but on Linux
            # sched_setaffinity(0, {0}) succeeds.
            assert all(w["affinity"] in (0, None) for w in info)
            assert len({w["pid"] for w in info}) == 2
        finally:
            datapath.close()

    def test_unknown_transport_rejected(self):
        with pytest.raises(SwitchError, match="unknown process transport"):
            ProcessShardExecutor(transport="carrier-pigeon")

    def test_dead_worker_raises_descriptive_executor_error(self):
        """A killed worker surfaces as ExecutorError naming shard and op,
        not as a raw pipe EOFError."""
        table = small_table()
        datapath = build("process", table, n_shards=2)
        try:
            datapath.process_batch([FlowKey(ip_src=9, tp_dst=80, ip_proto=6)])
            executor = datapath.executor
            executor._procs[1].kill()
            executor._procs[1].join(timeout=5.0)
            with pytest.raises(ExecutorError) as excinfo:
                # Drive both workers so the dead one must answer.
                datapath.process_batch(
                    [FlowKey(ip_src=i, tp_dst=80, ip_proto=6) for i in range(16)]
                )
            message = str(excinfo.value)
            assert "pmd worker 1" in message
            assert "shards [1]" in message
            assert "died during op" in message
            assert "last completed op" in message
        finally:
            datapath.close()
