"""Unit tests for the §7 alternative classifiers (tries, HyperCuts, HaRP)."""

import pytest

from repro.classifier.actions import ALLOW, DENY
from repro.classifier.adapter import TssCachedClassifier
from repro.classifier.harp import HarpClassifier
from repro.classifier.hypercuts import HyperCutsClassifier
from repro.classifier.linear import LinearSearchClassifier
from repro.classifier.rule import FlowRule, Match
from repro.classifier.trie import HierarchicalTrieClassifier, prefix_length
from repro.core.usecases import SIPSPDP
from repro.exceptions import ClassifierError
from repro.packet.fields import FlowKey
from repro.packet.headers import PROTO_TCP


def fig6_rules():
    return SIPSPDP.build_table().rules_by_priority()


WEB = FlowKey(ip_proto=PROTO_TCP, ip_src=7, tp_src=50000, tp_dst=80)
TRUSTED = FlowKey(ip_proto=PROTO_TCP, ip_src=0x0A000001, tp_src=50000, tp_dst=443)
RANDOM_DENY = FlowKey(ip_proto=PROTO_TCP, ip_src=9, tp_src=9, tp_dst=9)

ALL_CLASSIFIERS = [
    LinearSearchClassifier,
    HierarchicalTrieClassifier,
    HyperCutsClassifier,
    HarpClassifier,
    TssCachedClassifier,
]


class TestPrefixLength:
    def test_valid_prefixes(self):
        assert prefix_length(0x8000, 16) == 1
        assert prefix_length(0xC000, 16) == 2
        assert prefix_length(0xFFFF, 16) == 16
        assert prefix_length(0, 16) == 0

    def test_non_prefix_rejected(self):
        with pytest.raises(ClassifierError):
            prefix_length(0x0001, 16)
        with pytest.raises(ClassifierError):
            prefix_length(0xA000, 16)


@pytest.mark.parametrize("classifier_cls", ALL_CLASSIFIERS,
                         ids=lambda c: c.__name__)
class TestFig6Semantics:
    def test_allow_web(self, classifier_cls):
        clf = classifier_cls(fig6_rules())
        assert clf.classify(WEB).action.is_allow

    def test_allow_trusted_host(self, classifier_cls):
        clf = classifier_cls(fig6_rules())
        assert clf.classify(TRUSTED).action.is_allow

    def test_default_deny(self, classifier_cls):
        clf = classifier_cls(fig6_rules())
        assert clf.classify(RANDOM_DENY).action.is_drop

    def test_priority_resolution(self, classifier_cls):
        """The §2.1 overlap example: rule #2 wins over #4."""
        clf = classifier_cls(fig6_rules())
        key = FlowKey(ip_proto=PROTO_TCP, ip_src=0x0A000001, tp_src=34521, tp_dst=443)
        result = clf.classify(key)
        assert result.action.is_allow

    def test_cost_positive(self, classifier_cls):
        clf = classifier_cls(fig6_rules())
        assert clf.classify(WEB).cost >= 1

    def test_memory_units_positive(self, classifier_cls):
        clf = classifier_cls(fig6_rules())
        clf.classify(WEB)  # the TSS cache is empty until traffic arrives
        assert clf.memory_units() >= 1


class TestTrieSpecifics:
    def test_prefix_rules(self):
        rules = [
            FlowRule(Match(ip_src=(0x0A000000, 0xFF000000)), ALLOW, priority=1, name="net10"),
            FlowRule(Match(ip_src=(0x0A0A0000, 0xFFFF0000)), DENY, priority=2, name="net1010"),
            FlowRule(Match.any(), DENY, priority=0, name="default"),
        ]
        trie = HierarchicalTrieClassifier(rules)
        # Longest-match by priority: 10.10.x.x denied, rest of 10/8 allowed.
        assert trie.classify(FlowKey(ip_src=0x0A0A0001)).action.is_drop
        assert trie.classify(FlowKey(ip_src=0x0A0B0001)).action.is_allow
        assert trie.classify(FlowKey(ip_src=0x0B000001)).action.is_drop

    def test_backtracking_finds_shorter_prefix(self):
        rules = [
            FlowRule(Match(ip_src=(0x0A000000, 0xFF000000), tp_dst=80), ALLOW,
                     priority=2, name="specific"),
            FlowRule(Match(tp_dst=80), DENY, priority=1, name="broad"),
            FlowRule(Match.any(), DENY, priority=0),
        ]
        trie = HierarchicalTrieClassifier(rules)
        # 11.x.x.x:80 must fall back to the zero-length ip_src prefix.
        assert trie.classify(FlowKey(ip_src=0x0B000001, tp_dst=80)).rule_name == "broad"

    def test_rejects_non_prefix_masks(self):
        rules = [FlowRule(Match(tp_dst=(0x0001, 0x0001)), ALLOW)]
        with pytest.raises(ClassifierError):
            HierarchicalTrieClassifier(rules)

    def test_catchall_only(self):
        trie = HierarchicalTrieClassifier([FlowRule(Match.any(), ALLOW, name="any")])
        assert trie.classify(FlowKey()).action.is_allow


class TestHyperCutsSpecifics:
    def test_bucket_limit_respected(self):
        clf = HyperCutsClassifier(fig6_rules(), binth=2)
        assert clf.classify(WEB).action.is_allow

    def test_config_validation(self):
        with pytest.raises(ClassifierError):
            HyperCutsClassifier([], binth=0)
        with pytest.raises(ClassifierError):
            HyperCutsClassifier([], max_cuts=1)

    def test_cost_bounded_by_depth_plus_bucket(self):
        clf = HyperCutsClassifier(fig6_rules(), binth=4, max_cuts=8)
        for key in (WEB, TRUSTED, RANDOM_DENY):
            assert clf.classify(key).cost < 40

    def test_many_disjoint_rules_tree_splits(self):
        rules = [
            FlowRule(Match(tp_dst=port), ALLOW, priority=1, name=f"p{port}")
            for port in range(0, 64)
        ]
        rules.append(FlowRule(Match.any(), DENY, priority=0, name="deny"))
        clf = HyperCutsClassifier(rules, binth=4)
        for port in (0, 13, 63):
            assert clf.classify(FlowKey(tp_dst=port)).rule_name == f"p{port}"
        assert clf.classify(FlowKey(tp_dst=100)).rule_name == "deny"


class TestHarpSpecifics:
    def test_primary_field_default(self):
        clf = HarpClassifier(fig6_rules())
        # ip_proto appears in 3 rules (most-constrained): acceptable choice,
        # but classification stays correct regardless.
        assert clf.classify(WEB).action.is_allow

    def test_explicit_primary_field(self):
        clf = HarpClassifier(fig6_rules(), primary_field="ip_src", stride=8)
        assert clf.classify(TRUSTED).action.is_allow
        assert clf.classify(RANDOM_DENY).action.is_drop

    def test_tread_rounding(self):
        rules = [
            FlowRule(Match(ip_src=(0x0A000000, 0xFFC00000)), ALLOW, priority=1, name="10/10"),
            FlowRule(Match.any(), DENY, priority=0, name="deny"),
        ]
        clf = HarpClassifier(rules, primary_field="ip_src", stride=8)
        # /10 rounds down to the /8 tread but the full match is verified.
        assert clf.classify(FlowKey(ip_src=0x0A100001)).rule_name == "10/10"
        assert clf.classify(FlowKey(ip_src=0x0AF00001)).rule_name == "deny"

    def test_stride_validation(self):
        with pytest.raises(ClassifierError):
            HarpClassifier([], stride=0)

    def test_cost_is_treads_plus_bucket_checks(self):
        clf = HarpClassifier(fig6_rules(), primary_field="ip_src", stride=8)
        assert clf.classify(RANDOM_DENY).cost <= len(clf.treads) + 10


class TestTssAdapterSpecifics:
    def test_cost_grows_with_attack(self):
        from repro.core.tracegen import ColocatedTraceGenerator

        rules = fig6_rules()
        clf = TssCachedClassifier(rules)
        benign_before = clf.classify(WEB).cost
        table = SIPSPDP.build_table()
        trace = ColocatedTraceGenerator(table, base={"ip_proto": PROTO_TCP}).generate()
        for key in trace.keys:
            clf.classify(key)
        # Steady state: the scan order decorrelates from insertion order.
        clf.churn(seed=3)
        benign_after = clf.classify(WEB.replace(tp_src=50001)).cost
        assert benign_after > 20 * max(benign_before, 1)
        assert clf.n_masks > 8000

    def test_churn_preserves_semantics(self):
        rules = fig6_rules()
        clf = TssCachedClassifier(rules)
        keys = [WEB, TRUSTED, RANDOM_DENY]
        before = [clf.classify(k).action for k in keys]
        clf.churn(seed=9)
        after = [clf.classify(k).action for k in keys]
        assert before == after
