"""Live-backend-migration tests: rebuild contract, swap races, controller.

The migration invariants under test (ISSUE 8 / ROADMAP item 3):

* the rebuild adopts the *same entry objects* the truth-store dicts hold,
  so a swap is verdict-for-verdict invisible — replay actions match a
  never-migrated datapath fed the identical history, entry/mask counts
  are preserved exactly, and the microflow cache stays valid with no
  flush at the swap;
* the delta journal carries every mid-rebuild mutation (installs, kills,
  idle evictions, full flushes) into the target, so maintenance daemons
  (revalidator, MFCGuard) and flow-table deltas can run concurrently with
  an in-flight rebuild under every executor strategy — mirroring the
  ``tests/test_executor.py`` equivalence invariants;
* :class:`~repro.core.migration.MigrationController` triggers on the
  probe-cost plane with hysteresis + cooldown, never re-triggers on the
  target backend, and arms a co-deployed MFCGuard's chain-aware
  stand-down (hybrid mode);
* ``dpctl show`` renders the per-shard ``backend:`` and ``migration:``
  operator lines through the same proxies as the rest of the management
  plane.
"""

from __future__ import annotations

import pytest
from test_executor import assert_equivalent, build, small_table, staircase_replay

from repro.classifier.actions import DENY
from repro.classifier.backend import BackendRebuild, backend_name_of
from repro.classifier.flowtable import FlowTable
from repro.classifier.rule import Match
from repro.core.migration import MigrationController, MigrationPolicy
from repro.core.mitigation import MFCGuard, MFCGuardConfig
from repro.core.tracegen import ColocatedTraceGenerator
from repro.core.usecases import SIPDP
from repro.exceptions import ClassifierError, ExperimentError, SwitchError
from repro.netsim.cloud import SYNTHETIC_ENV, Server
from repro.packet.fields import FlowKey
from repro.packet.headers import PROTO_TCP
from repro.switch.datapath import Datapath, DatapathConfig, PathTaken
from repro.switch.dpctl import show
from repro.switch.revalidator import Revalidator

EXECUTORS = ("serial", "thread", "process")


def sipdp_detonation() -> tuple[FlowTable, list[FlowKey]]:
    """SipDp's ~500-mask staircase: a real detonation that stays test-sized."""
    table = SIPDP.build_table()
    trace = ColocatedTraceGenerator(table, base={"ip_proto": PROTO_TCP}).generate()
    return table, list(trace.keys)


def plain(table: FlowTable, backend: str = "tss", microflows: int = 0) -> Datapath:
    return Datapath(
        table,
        DatapathConfig(microflow_capacity=microflows, megaflow_backend=backend),
    )


def replay_actions(datapath, keys):
    """Memo-less replay actions — the cross-backend comparable quantity."""
    for shard in datapath.shards:
        shard.megaflows.clear_memo()
    return [verdict.action for verdict in datapath.process_batch(keys)]


class TestRebuildContract:
    def test_one_shot_swap_is_verdict_invisible(self):
        """Post-swap replay matches a never-migrated tuplechain datapath."""
        table, keys = sipdp_detonation()
        migrating = plain(table)
        migrating.process_batch(keys)
        reference = plain(SIPDP.build_table(), backend="tuplechain")
        reference.process_batch(keys)

        pre_entries = migrating.megaflows.n_entries
        pre_masks = migrating.n_masks
        pre_ids = {id(entry) for entry in migrating.megaflows.entries()}
        expected = replay_actions(reference, keys)
        assert replay_actions(migrating, keys) == expected

        status = migrating.migrate_backend("tuplechain")
        assert status["status"] == "swapped"
        assert status["swaps"] == 1
        assert backend_name_of(migrating.megaflows) == "tuplechain"
        # The rebuild adopted the *same* entry objects, every one of them.
        assert {id(entry) for entry in migrating.megaflows.entries()} == pre_ids
        assert migrating.megaflows.n_entries == pre_entries
        assert migrating.n_masks == pre_masks
        assert replay_actions(migrating, keys) == expected

    def test_microflow_cache_survives_swap_without_flush(self):
        """Shared entry objects keep microflow identity checks valid."""
        table, keys = sipdp_detonation()
        datapath = plain(table, microflows=64)
        key = keys[0]
        datapath.process(key)
        assert datapath.process(key).path is PathTaken.MICROFLOW
        datapath.migrate_backend("tuplechain")
        # No flush happened: the cached entry still passes find_entry.
        assert datapath.process(key).path is PathTaken.MICROFLOW

    def test_journal_carries_mid_rebuild_mutations(self):
        """Installs, kills and idle evictions during the rebuild land in
        the target — the swapped cache matches a never-migrated twin."""
        table, keys = sipdp_detonation()
        migrating = plain(table)
        shadow = plain(SIPDP.build_table())  # same backend, never migrated
        for datapath in (migrating, shadow):
            datapath.process_batch(keys, now=0.0)

        status = migrating.migrate_backend_start("tuplechain", slice_size=64)
        assert status["status"] == "rebuilding"
        assert 0.0 < migrating.migrate_backend_step(64)["progress"] < 1.0

        # Mid-rebuild mutations, applied identically to the shadow twin:
        # a permanent kill, a full idle eviction, then fresh re-installs
        # (insert + remove + re-insert all land in the delta journal).
        extra = keys[: len(keys) // 4]
        for datapath in (migrating, shadow):
            victim = next(iter(datapath.megaflows.entries()))
            assert datapath.kill_entry(victim, permanent=True)
            datapath.evict_idle(now=12.0)  # the idle detonation entries go
            assert datapath.megaflows.n_entries == 0
            datapath.process_batch(extra, now=13.0)  # fresh installs
            assert datapath.megaflows.n_entries > 0

        while True:
            status = migrating.migrate_backend_step(64)
            if status["rebuild_done"]:
                break
        assert status["journal_replayed"] > 0
        status = migrating.migrate_backend_swap()
        assert status["status"] == "swapped"
        assert backend_name_of(migrating.megaflows) == "tuplechain"
        assert migrating.megaflows.n_entries == shadow.megaflows.n_entries
        assert migrating.n_masks == shadow.n_masks
        assert replay_actions(migrating, extra) == replay_actions(shadow, extra)

    def test_flush_mid_rebuild_empties_the_target(self):
        """A flow-table delta flushes the live cache *and* the rebuild."""
        table, keys = sipdp_detonation()
        datapath = plain(table)
        datapath.process_batch(keys)
        datapath.migrate_backend_start("tuplechain", slice_size=64)
        datapath.migrate_backend_step(64)
        table.add_rule(Match(tp_dst=(9999, 0xFFFF)), DENY, priority=2000, name="late")
        assert datapath.megaflows.n_entries == 0  # subscription flushed
        while not datapath.migrate_backend_step(64)["rebuild_done"]:
            pass
        status = datapath.migrate_backend_swap()
        assert status["status"] == "swapped"
        assert datapath.megaflows.n_entries == 0
        assert datapath.n_masks == 0

    def test_abort_keeps_the_live_backend(self):
        table, keys = sipdp_detonation()
        datapath = plain(table)
        datapath.process_batch(keys)
        datapath.migrate_backend_start("tuplechain", slice_size=64)
        status = datapath.migrate_backend_abort()
        assert status["status"] == "idle"
        assert backend_name_of(datapath.megaflows) == "tss"
        # A fresh start is legal after an abort (and abort is idempotent).
        datapath.migrate_backend_abort()
        assert datapath.migrate_backend("tuplechain")["status"] == "swapped"

    def test_migration_state_errors(self):
        datapath = plain(small_table())
        with pytest.raises(SwitchError, match="no backend migration"):
            datapath.migrate_backend_step()
        with pytest.raises(SwitchError, match="no backend migration"):
            datapath.migrate_backend_swap()
        datapath.migrate_backend_start("tuplechain")
        with pytest.raises(SwitchError, match="already in progress"):
            datapath.migrate_backend_start("tuplechain")

    def test_rebuild_rejects_bad_arguments(self):
        datapath = plain(small_table())
        with pytest.raises(ClassifierError):
            BackendRebuild(datapath.megaflows, "tuplechain", slice_size=0)
        with pytest.raises(ClassifierError):
            BackendRebuild(object(), "tuplechain")


class TestSwapUnderExecutors:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_swap_with_concurrent_maintenance(self, executor):
        """Guard run + revalidator sweep + flow-table delta + fresh traffic
        during an in-flight rebuild: the swapped executor datapath stays
        fully equivalent to a serial one driven identically."""
        table_a, keys = staircase_replay(extra=40)
        table_b = FlowTable(rules=list(table_a))
        reference = build("serial", table_a, n_shards=2)
        other = build(executor, table_b, n_shards=2)
        try:
            for datapath in (reference, other):
                datapath.process_batch(keys, now=0.0)
                # In-flight rebuild on every shard (through the proxies
                # under the process executor: the rebuild runs inside the
                # owning worker, entry objects never cross the boundary).
                for shard in datapath.shards:
                    shard.migrate_backend_start("tuplechain", slice_size=64)
                    shard.migrate_backend_step(64)
                # Concurrent maintenance while the rebuild is in flight.
                guard = MFCGuard(
                    datapath,
                    MFCGuardConfig(mask_threshold=50, cpu_threshold_pct=900),
                )
                guard.run(now=10.0)
                Revalidator(datapath, period=1.0).sweep(now=11.0)
            late_a = table_a.add_rule(
                Match(tp_dst=(9999, 0xFFFF)), DENY, priority=2000, name="late"
            )
            table_b.add_rule(
                Match(tp_dst=(9999, 0xFFFF)), DENY, priority=2000, name="late"
            )
            assert late_a is not None
            for datapath in (reference, other):
                datapath.process_batch(keys[: len(keys) // 2], now=12.0)
                for shard in datapath.shards:
                    while not shard.migrate_backend_step(64)["rebuild_done"]:
                        pass
                    assert shard.migrate_backend_swap()["status"] == "swapped"
            statuses = other.migration_status()
            assert [s["backend"] for s in statuses] == ["tuplechain", "tuplechain"]
            assert [s["swaps"] for s in statuses] == [1, 1]
            expected = reference.process_batch(keys, now=20.0)
            got = other.process_batch(keys, now=20.0)
            assert_equivalent(
                reference, other, expected, got, f"migration/{executor}"
            )
        finally:
            other.close()

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_sharded_one_shot_migrate_backend(self, executor):
        """ShardedDatapath.migrate_backend swaps every shard atomically
        under the maintenance lock and reports per-shard statuses."""
        table, keys = staircase_replay(extra=0)
        datapath = build(executor, table, n_shards=2)
        try:
            datapath.process_batch(keys, now=0.0)
            statuses = datapath.migrate_backend("tuplechain")
            assert [s["status"] for s in statuses] == ["swapped", "swapped"]
            assert all(s["backend"] == "tuplechain" for s in statuses)
        finally:
            datapath.close()

    def test_sharded_selective_shard_migration(self):
        table, keys = staircase_replay(extra=0)
        datapath = build("serial", table, n_shards=2)
        datapath.process_batch(keys, now=0.0)
        statuses = datapath.migrate_backend("tuplechain", shard_id=0)
        assert statuses[0]["status"] == "swapped"
        assert statuses[1]["status"] == "idle"
        assert statuses[1]["backend"] == "tss"


class TestMigrationController:
    def detonated(self) -> Datapath:
        table, keys = sipdp_detonation()
        datapath = plain(table)
        datapath.process_batch(keys)
        return datapath

    def test_triggers_and_swaps_on_cost(self):
        datapath = self.detonated()
        assert datapath.scan_cost > 50.0
        controller = MigrationController(
            datapath, MigrationPolicy(cost_threshold=50.0, slice_entries=100_000)
        )
        report = controller.run(now=0.0)
        assert report.started == (0,)
        assert report.swapped == (0,)
        assert controller.migrations_completed == 1
        assert backend_name_of(datapath.megaflows) == "tuplechain"

    def test_bounded_slices_spread_the_rebuild(self):
        datapath = self.detonated()
        controller = MigrationController(
            datapath, MigrationPolicy(cost_threshold=50.0, slice_entries=64)
        )
        report = controller.run(now=0.0)
        assert report.started == (0,) and report.swapped == ()
        runs = 1
        while controller.migrations_completed == 0:
            controller.run(now=float(runs))
            runs += 1
            assert runs < 100
        assert runs > 1  # the rebuild genuinely spread over several passes
        assert backend_name_of(datapath.megaflows) == "tuplechain"

    def test_no_retrigger_after_swap(self):
        datapath = self.detonated()
        controller = MigrationController(
            datapath, MigrationPolicy(cost_threshold=50.0, slice_entries=100_000)
        )
        controller.run(now=0.0)
        for now in (0.1, 31.0, 300.0):  # inside and far past the cooldown
            report = controller.run(now=now)
            assert report.started == ()
        assert controller.migrations_completed == 1

    def test_cooldown_and_hysteresis_gate_restarts(self):
        datapath = self.detonated()
        policy = MigrationPolicy(cost_threshold=50.0, cooldown=30.0)
        controller = MigrationController(datapath, policy)
        # A swapped-and-still-expensive shard must not flap: disarmed, the
        # trigger stays off while the cost sits above the re-arm level.
        expensive = {"scan_cost": policy.cost_threshold * 0.9, "backend": "tss"}
        controller._armed[0] = False
        assert not controller._should_start(0, expensive, now=100.0)
        cheap = {"scan_cost": 1.0, "backend": "tss"}
        assert not controller._should_start(0, cheap, now=100.0)  # re-arms only
        assert controller._armed[0]
        # Re-armed but cooling down: still gated.
        controller._cooldown_until[0] = 200.0
        hot = {"scan_cost": policy.cost_threshold * 10, "backend": "tss"}
        assert not controller._should_start(0, hot, now=150.0)
        assert controller._should_start(0, hot, now=250.0)

    def test_tick_respects_period(self):
        datapath = plain(small_table())
        controller = MigrationController(datapath, MigrationPolicy(period=0.5))
        assert not controller.tick(now=0.1).ran
        assert controller.tick(now=0.6).ran
        assert not controller.tick(now=0.7).ran

    def test_arms_guard_stand_down(self):
        datapath = plain(small_table())
        guard = MFCGuard(datapath, MFCGuardConfig(mask_threshold=50))
        assert guard.config.probe_cost_threshold is None
        MigrationController(datapath, MigrationPolicy(cost_threshold=512.0), guard=guard)
        assert guard.config.probe_cost_threshold == 512.0

        # An operator-set threshold wins; stand_down_guard=False opts out.
        tuned = MFCGuard(
            datapath, MFCGuardConfig(mask_threshold=50, probe_cost_threshold=10.0)
        )
        MigrationController(datapath, MigrationPolicy(), guard=tuned)
        assert tuned.config.probe_cost_threshold == 10.0
        plain_guard = MFCGuard(datapath, MFCGuardConfig(mask_threshold=50))
        MigrationController(
            datapath, MigrationPolicy(stand_down_guard=False), guard=plain_guard
        )
        assert plain_guard.config.probe_cost_threshold is None

    def test_policy_validation(self):
        for bad in (
            dict(cost_threshold=0.0),
            dict(hysteresis=0.0),
            dict(hysteresis=1.5),
            dict(cooldown=-1.0),
            dict(slice_entries=0),
            dict(period=0.0),
        ):
            with pytest.raises(ExperimentError):
                MigrationPolicy(**bad)


class TestDpctlRendering:
    def test_backend_and_migration_lines(self):
        table, keys = sipdp_detonation()
        datapath = plain(table)
        datapath.process_batch(keys)
        text = show(datapath)
        assert "backend: tss" in text
        assert "migration: idle" in text

        datapath.migrate_backend_start("tuplechain", slice_size=64)
        datapath.migrate_backend_step(64)
        text = show(datapath)
        assert "migration: rebuilding -> tuplechain" in text
        assert "copied" in text and "replayed" in text

        while not datapath.migrate_backend_step(64)["rebuild_done"]:
            pass
        datapath.migrate_backend_swap()
        text = show(datapath)
        assert "backend: tuplechain" in text
        assert "migration: swapped x1" in text

    def test_sharded_show_renders_per_pmd_migration(self):
        table, keys = staircase_replay(extra=0)
        datapath = build("process", table, n_shards=2)
        try:
            datapath.process_batch(keys)
            assert show(datapath).count("migration: idle") == 2
            datapath.migrate_backend("tuplechain")
            text = show(datapath)
            assert text.count("backend: tuplechain") == 2
            assert text.count("migration: swapped x1") == 2
        finally:
            datapath.close()


class TestEnvironmentWiring:
    def test_server_builds_migrator_only_when_policy_set(self):
        from dataclasses import replace

        armed = replace(
            SYNTHETIC_ENV,
            name="Synthetic/migrate",
            migration_policy=MigrationPolicy(cost_threshold=50.0),
        )
        server = Server("s1", armed)
        try:
            assert isinstance(server.host.migrator, MigrationController)
            assert server.host.migrator.policy.cost_threshold == 50.0
        finally:
            server.close()

        default = replace(SYNTHETIC_ENV, name="Synthetic/plain")
        server = Server("s2", default)
        try:
            assert server.host.migrator is None
        finally:
            server.close()
