"""Unit tests for NIC offload profiles."""

import pytest

from repro.exceptions import SwitchError
from repro.switch.offload import FHO_TCP, GRO_OFF_TCP, GRO_ON_TCP, PROFILES, NicProfile, UDP_PROFILE


class TestProfiles:
    def test_registry_complete(self):
        assert set(PROFILES) == {
            "GRO OFF (TCP)", "GRO ON (TCP)", "FHO ON (TCP)", "UDP",
        }

    def test_fho_has_hardware_capacity(self):
        assert FHO_TCP.hardware_offload
        assert FHO_TCP.baseline_gbps == 30.0  # the paper's ~30 Gbps boost

    def test_gro_on_aggregates(self):
        """GRO buffers divide the classified packet rate by ~43x."""
        assert GRO_ON_TCP.unit_bytes / GRO_OFF_TCP.unit_bytes > 40

    def test_baseline_pps(self):
        # 10 Gbps at 1500 B = ~833 kpps; at 64 kB buffers = ~19 k lookups/s,
        # the "couple of thousand pps" the paper says OVS handles easily.
        assert GRO_OFF_TCP.baseline_pps == pytest.approx(833_333, rel=0.01)
        assert GRO_ON_TCP.baseline_pps < 25_000

    def test_anchors_within_unit_interval(self):
        for profile in PROFILES.values():
            for masks, fraction in profile.anchors.items():
                assert masks >= 1
                assert 0 < fraction <= 1

    def test_udp_profile_unaffected_by_gro(self):
        assert UDP_PROFILE.unit_bytes < 2000  # never aggregated


class TestValidation:
    def test_bad_baseline(self):
        with pytest.raises(SwitchError):
            NicProfile(name="x", baseline_gbps=0, unit_bytes=1500)

    def test_bad_unit(self):
        with pytest.raises(SwitchError):
            NicProfile(name="x", baseline_gbps=1, unit_bytes=0)

    def test_bad_anchor(self):
        with pytest.raises(SwitchError):
            NicProfile(name="x", baseline_gbps=1, unit_bytes=1500, anchors={0: 0.5})
        with pytest.raises(SwitchError):
            NicProfile(name="x", baseline_gbps=1, unit_bytes=1500, anchors={10: 1.5})
