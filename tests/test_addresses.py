"""Unit tests for address parsing/formatting helpers."""

import pytest

from repro.exceptions import FieldError
from repro.packet.addresses import cidr4, cidr6, ipv4, ipv4_str, ipv6, ipv6_str, mac, mac_str


class TestIPv4:
    def test_roundtrip(self):
        assert ipv4("10.0.0.1") == 0x0A000001
        assert ipv4_str(0x0A000001) == "10.0.0.1"

    def test_extremes(self):
        assert ipv4("0.0.0.0") == 0
        assert ipv4("255.255.255.255") == 0xFFFFFFFF

    def test_bad_input(self):
        with pytest.raises(FieldError):
            ipv4("10.0.0.256")
        with pytest.raises(FieldError):
            ipv4("not-an-ip")
        with pytest.raises(FieldError):
            ipv4_str(1 << 32)


class TestIPv6:
    def test_roundtrip(self):
        value = ipv6("2001:db8::1")
        assert value == 0x20010DB8000000000000000000000001
        assert ipv6_str(value) == "2001:db8::1"

    def test_bad_input(self):
        with pytest.raises(FieldError):
            ipv6("2001:db8::zz")
        with pytest.raises(FieldError):
            ipv6_str(1 << 128)


class TestMac:
    def test_roundtrip(self):
        assert mac("02:00:00:00:00:01") == 0x020000000001
        assert mac_str(0x020000000001) == "02:00:00:00:00:01"

    def test_bad_input(self):
        with pytest.raises(FieldError):
            mac("02:00:00:00:00")  # five octets
        with pytest.raises(FieldError):
            mac("02:00:00:00:00:zz")
        with pytest.raises(FieldError):
            mac_str(1 << 48)


class TestCidr:
    def test_cidr4(self):
        address, mask = cidr4("10.0.0.0/8")
        assert address == 0x0A000000
        assert mask == 0xFF000000

    def test_cidr4_host_route(self):
        address, mask = cidr4("10.0.0.1/32")
        assert address == 0x0A000001
        assert mask == 0xFFFFFFFF

    def test_cidr4_non_strict(self):
        address, mask = cidr4("10.1.2.3/8")  # host bits set: normalised
        assert address == 0x0A000000
        assert mask == 0xFF000000

    def test_cidr6(self):
        address, mask = cidr6("2001:db8::/32")
        assert address == 0x20010DB8 << 96
        assert mask == ((1 << 32) - 1) << 96

    def test_bad_cidr(self):
        with pytest.raises(FieldError):
            cidr4("10.0.0.0/33")
