"""Tests for the experiments CLI and the exception hierarchy."""

import pytest

from repro import exceptions
from repro.experiments.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig8a" in out
        assert "theorem41" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "fig9b" in capsys.readouterr().out

    def test_run_one(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Kubernetes" in out
        assert "finished in" in out

    def test_save(self, tmp_path, capsys):
        assert main(["didactic", "--save", str(tmp_path)]) == 0
        assert (tmp_path / "didactic.txt").exists()

    def test_unknown_experiment(self, capsys):
        with pytest.raises(SystemExit):
            main(["nonexistent"])


class TestExceptionHierarchy:
    def test_single_root(self):
        for name in dir(exceptions):
            obj = getattr(exceptions, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and obj is not exceptions.ReproError:
                assert issubclass(obj, exceptions.ReproError), name

    def test_domain_subtrees(self):
        assert issubclass(exceptions.FieldError, exceptions.PacketError)
        assert issubclass(exceptions.PcapError, exceptions.PacketError)
        assert issubclass(exceptions.RuleError, exceptions.ClassifierError)
        assert issubclass(exceptions.CacheInvariantError, exceptions.ClassifierError)
        assert issubclass(exceptions.PolicyError, exceptions.SimulationError)

    def test_catch_all_contract(self):
        """Library failures are catchable with one except clause."""
        from repro.packet.addresses import ipv4

        with pytest.raises(exceptions.ReproError):
            ipv4("not-an-address")
