"""Shared fixtures for the TSE reproduction test suite."""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro.classifier.actions import ALLOW
from repro.classifier.flowtable import FlowTable
from repro.classifier.rule import Match

# The nightly CI leg runs the property-based tests with a 10x example
# budget (HYPOTHESIS_PROFILE=nightly); interactive and per-PR runs keep
# hypothesis' stock budget so the suite stays fast.
settings.register_profile("nightly", max_examples=1000)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))

# The 3-bit HYP protocol of Fig. 1, mapped onto the top bits of ip_tos,
# and the 4-bit HYP2 onto the top bits of ip_ttl (see experiments.didactic).
HYP_SHIFT = 5
HYP_MASK = 0b111 << HYP_SHIFT
HYP2_SHIFT = 4
HYP2_MASK = 0b1111 << HYP2_SHIFT


def hyp(value: int) -> int:
    """3-bit HYP value -> ip_tos field value."""
    return value << HYP_SHIFT


def hyp2(value: int) -> int:
    """4-bit HYP2 value -> ip_ttl field value."""
    return value << HYP2_SHIFT


@pytest.fixture
def fig1_table() -> FlowTable:
    """The Fig. 1 flow table: allow HYP=001, DefaultDeny."""
    table = FlowTable(name="fig1")
    table.add_rule(Match(ip_tos=(hyp(0b001), HYP_MASK)), ALLOW, priority=10, name="allow-001")
    table.add_default_deny()
    return table


@pytest.fixture
def fig4_table() -> FlowTable:
    """The Fig. 4 two-field ACL: allow HYP=001; allow HYP2=1111; deny."""
    table = FlowTable(name="fig4")
    table.add_rule(Match(ip_tos=(hyp(0b001), HYP_MASK)), ALLOW, priority=20, name="allow-hyp")
    table.add_rule(Match(ip_ttl=(hyp2(0b1111), HYP2_MASK)), ALLOW, priority=10, name="allow-hyp2")
    table.add_default_deny()
    return table
