"""Differential tests: vectorised settlement ≡ the scalar reference.

The invariant every Table 1 / Fig 8-9 preset rides on: the numpy
settlement kernel (`settle_rates`, `update_protection`) must produce
*float-identical* results to the original per-victim Python loops
retained in :mod:`repro.netsim.settlement` — same arithmetic, same
accumulation order, bit for bit, across environments, shard counts and
victim placements.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.tracegen import ColocatedTraceGenerator
from repro.core.usecases import SIPDP
from repro.exceptions import SimulationError
from repro.netsim import settlement
from repro.netsim.cloud import KUBERNETES_ENV, OPENSTACK_ENV, SYNTHETIC_ENV
from repro.netsim.hypervisor import HypervisorHost, QuirkConfig
from repro.packet.fields import FlowKey
from repro.packet.headers import PROTO_TCP
from repro.switch.datapath import CoreReport, Datapath, DatapathConfig

ENVS = {
    "synthetic": SYNTHETIC_ENV,
    "openstack": OPENSTACK_ENV,
    "kubernetes": KUBERNETES_ENV,
}

QUIRK_VARIANTS = (
    QuirkConfig(),
    QuirkConfig(established_flow_protection=True, establish_seconds=2.0),
    QuirkConfig(
        established_flow_protection=True,
        establish_seconds=1.0,
        establish_mask_ceiling=8,
        collision_rate=0.02,
    ),
)


@st.composite
def settlement_cases(draw):
    """A random (cores, victims, placement, protection) settlement input."""
    n_cores = draw(st.integers(min_value=1, max_value=4))
    n_victims = draw(st.integers(min_value=1, max_value=16))
    scan_cost = draw(
        st.lists(
            st.floats(min_value=1.0, max_value=9000.0, allow_nan=False),
            min_size=n_cores,
            max_size=n_cores,
        )
    )
    available = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=2e7, allow_nan=False),
            min_size=n_cores,
            max_size=n_cores,
        )
    )
    # Each victim sits on a non-empty, sorted subset of cores (home_shards).
    placements = [
        tuple(
            sorted(
                draw(
                    st.sets(
                        st.integers(min_value=0, max_value=n_cores - 1),
                        min_size=1,
                        max_size=n_cores,
                    )
                )
            )
        )
        for _ in range(n_victims)
    ]
    protected = draw(
        st.lists(st.booleans(), min_size=n_victims, max_size=n_victims)
    )
    return n_cores, n_victims, scan_cost, available, placements, protected


@pytest.mark.parametrize("env_name", sorted(ENVS))
@pytest.mark.parametrize("quirk_index", range(len(QUIRK_VARIANTS)))
@given(case=settlement_cases())
@settings(max_examples=40, deadline=None)
def test_settle_rates_matches_scalar(env_name, quirk_index, case):
    """settle_rates ≡ settle_rates_scalar, float for float."""
    n_cores, n_victims, scan_cost, available, placements, protected = case
    cost_model = ENVS[env_name].cost_model
    quirks = QUIRK_VARIANTS[quirk_index]
    pair_victim = [v for v, homes in enumerate(placements) for _ in homes]
    pair_core = [s for homes in placements for s in homes]
    link_cap = cost_model.link_gbps / n_victims

    reports = [
        CoreReport(n_masks=int(c), n_megaflows=0, scan_cost=c) for c in scan_cost
    ]
    core = settlement.core_costs(reports, available, cost_model, quirks)
    vector = settlement.settle_rates(
        core,
        np.asarray(pair_victim, dtype=np.intp),
        np.asarray(pair_core, dtype=np.intp),
        np.asarray(protected, dtype=bool),
        n_victims,
        link_cap,
        cost_model.unit_bits,
    )
    scalar = settlement.settle_rates_scalar(
        scan_cost,
        available,
        pair_victim,
        pair_core,
        protected,
        n_victims,
        link_cap,
        cost_model,
        quirks,
    )
    assert vector.tolist() == scalar


@given(
    n=st.integers(min_value=1, max_value=32),
    now=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_update_protection_matches_scalar(n, now, data):
    """The columnwise protection state machine ≡ the per-victim one."""
    quirks = QUIRK_VARIANTS[data.draw(st.integers(0, len(QUIRK_VARIANTS) - 1))]
    masks = np.asarray(
        data.draw(st.lists(st.integers(1, 200), min_size=n, max_size=n)),
        dtype=np.int64,
    )
    calm_raw = data.draw(
        st.lists(
            st.one_of(
                st.none(), st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
            ),
            min_size=n,
            max_size=n,
        )
    )
    protected_raw = data.draw(st.lists(st.booleans(), min_size=n, max_size=n))

    calm_vec = np.asarray(
        [np.nan if c is None else c for c in calm_raw], dtype=np.float64
    )
    prot_vec = np.asarray(protected_raw, dtype=bool)
    settlement.update_protection(now, masks, calm_vec, prot_vec, quirks)

    calm_sca = [float("nan") if c is None else c for c in calm_raw]
    prot_sca = list(protected_raw)
    settlement.update_protection_scalar(
        now, masks.tolist(), calm_sca, prot_sca, quirks
    )

    assert prot_vec.tolist() == prot_sca
    for vec, sca in zip(calm_vec.tolist(), calm_sca):
        assert (math.isnan(vec) and math.isnan(sca)) or vec == sca


def test_settlement_mode_validation():
    with pytest.raises(SimulationError, match="settlement mode"):
        settlement.check_settlement_mode("simd")
    assert settlement.check_settlement_mode("scalar") == "scalar"


class TestHostModeIdentity:
    """Whole-host differential: both modes drive identical simulations."""

    VICTIM_KEY = FlowKey(ip_proto=PROTO_TCP, ip_src=5, tp_src=52000, tp_dst=80)

    def _run(self, environment, mode: str) -> list[tuple]:
        datapath = Datapath(
            SIPDP.build_table(), DatapathConfig(microflow_capacity=0)
        )
        host = HypervisorHost(
            datapath,
            environment.cost_model,
            quirks=environment.quirks,
            settlement_mode=mode,
        )
        for index in range(3):
            name = f"v{index}"
            host.register_victim(
                name, (self.VICTIM_KEY.replace(tp_src=52000 + index),)
            )
            host.victim_started(name, 0.0)
        trace = ColocatedTraceGenerator(
            datapath.flow_table, base={"ip_proto": PROTO_TCP}
        ).generate()
        samples = []
        for tick in range(120):
            now = tick * 0.1
            if 30 <= tick < 80:
                host.inject_attack_batch(trace.keys, now)
            host.tick(now, 0.1)
            samples.append(
                (
                    host.cpu_load_fraction,
                    tuple(host.per_core_load),
                    host.upcall_pps,
                    tuple(s.assigned_gbps for s in host.victims.values()),
                    tuple(s.protected for s in host.victims.values()),
                    tuple(s.calm_since for s in host.victims.values()),
                )
            )
        return samples

    @pytest.mark.parametrize("env_name", ["synthetic", "openstack"])
    def test_modes_identical_over_attack(self, env_name):
        environment = ENVS[env_name]
        assert self._run(environment, "vector") == self._run(environment, "scalar")

    def test_mode_knob_validated(self):
        datapath = Datapath(SIPDP.build_table(), DatapathConfig())
        with pytest.raises(SimulationError, match="settlement mode"):
            HypervisorHost(
                datapath, SYNTHETIC_ENV.cost_model, settlement_mode="gpu"
            )
