"""The example scripts must run end to end (they are executable docs)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES / name
    assert path.exists(), f"missing example {name}"
    argv = sys.argv
    try:
        sys.argv = [str(path)]
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = argv
    return capsys.readouterr().out


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "8209" in out          # the tuple space exploded
        assert "megaflow masks" in out

    def test_mfcguard_demo(self, capsys):
        out = run_example("mfcguard_demo.py", capsys)
        assert "TSE pattern" in out
        assert "never re-spark" in out
        assert "80%" in out or "80" in out  # Fig. 9c anchor mentioned

    def test_general_attack(self, capsys):
        out = run_example("general_attack.py", capsys)
        assert "masks (measured)" in out
        assert "wrote 1000 attack packets" in out

    def test_classifier_comparison(self, capsys):
        out = run_example("classifier_comparison.py", capsys)
        assert "tss-cache" in out
        assert "hypercuts" in out

    def test_colocated_cloud_attack(self, capsys):
        out = run_example("colocated_cloud_attack.py", capsys)
        assert "attack trace" in out
        assert "recovered" in out

    def test_operator_triage(self, capsys):
        out = run_example("operator_triage.py", capsys)
        assert "ovs-dpctl show" in out
        assert "TSE attribution" in out
        assert "exposure review" in out
