"""Unit tests for the exact-match microflow cache."""

import pytest

from repro.classifier.actions import ALLOW
from repro.classifier.microflow import MicroflowCache
from repro.classifier.tss import MegaflowEntry
from repro.exceptions import ClassifierError
from repro.packet.fields import FlowKey, FlowMask


def megaflow(tp_dst: int) -> MegaflowEntry:
    mask = FlowMask(tp_dst=0xFFFF)
    return MegaflowEntry(mask=mask, key=FlowKey(tp_dst=tp_dst).masked(mask), action=ALLOW)


class TestBasics:
    def test_miss_then_hit(self):
        cache = MicroflowCache(capacity=4)
        key = FlowKey(tp_dst=80, ip_ttl=1)
        assert cache.lookup(key) is None
        entry = megaflow(80)
        cache.insert(key, entry)
        assert cache.lookup(key) is entry

    def test_exact_match_only(self):
        cache = MicroflowCache(capacity=4)
        cache.insert(FlowKey(tp_dst=80, ip_ttl=1), megaflow(80))
        # Same megaflow coverage, different TTL: the microflow cache misses
        # (that is exactly what the paper's noise fields exploit).
        assert cache.lookup(FlowKey(tp_dst=80, ip_ttl=2)) is None

    def test_capacity_validation(self):
        with pytest.raises(ClassifierError):
            MicroflowCache(capacity=0)

    def test_contains_and_len(self):
        cache = MicroflowCache(capacity=4)
        key = FlowKey(tp_dst=80)
        cache.insert(key, megaflow(80))
        assert key in cache
        assert len(cache) == 1


class TestLru:
    def test_eviction_order(self):
        cache = MicroflowCache(capacity=2)
        k1, k2, k3 = FlowKey(tp_dst=1), FlowKey(tp_dst=2), FlowKey(tp_dst=3)
        cache.insert(k1, megaflow(1))
        cache.insert(k2, megaflow(2))
        cache.insert(k3, megaflow(3))  # evicts k1 (LRU)
        assert cache.lookup(k1) is None
        assert cache.lookup(k3) is not None
        assert cache.stats_evictions == 1

    def test_hit_refreshes_position(self):
        cache = MicroflowCache(capacity=2)
        k1, k2, k3 = FlowKey(tp_dst=1), FlowKey(tp_dst=2), FlowKey(tp_dst=3)
        cache.insert(k1, megaflow(1))
        cache.insert(k2, megaflow(2))
        cache.lookup(k1)  # refresh k1
        cache.insert(k3, megaflow(3))  # evicts k2 now
        assert cache.lookup(k1) is not None
        assert cache.lookup(k2) is None

    def test_reinsert_same_key_no_growth(self):
        cache = MicroflowCache(capacity=2)
        key = FlowKey(tp_dst=1)
        cache.insert(key, megaflow(1))
        cache.insert(key, megaflow(1))
        assert len(cache) == 1


class TestInvalidation:
    def test_invalidate_entry(self):
        cache = MicroflowCache(capacity=8)
        entry = megaflow(80)
        keys = [FlowKey(tp_dst=80, ip_ttl=t) for t in range(3)]
        for key in keys:
            cache.insert(key, entry)
        other = megaflow(81)
        cache.insert(FlowKey(tp_dst=81), other)
        assert cache.invalidate(entry) == 3
        assert len(cache) == 1

    def test_flush(self):
        cache = MicroflowCache(capacity=8)
        cache.insert(FlowKey(tp_dst=80), megaflow(80))
        cache.flush()
        assert len(cache) == 0

    def test_hit_rate(self):
        cache = MicroflowCache(capacity=8)
        key = FlowKey(tp_dst=80)
        assert cache.hit_rate == 0.0
        cache.lookup(key)
        cache.insert(key, megaflow(80))
        cache.lookup(key)
        assert cache.hit_rate == pytest.approx(0.5)
