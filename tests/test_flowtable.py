"""Unit tests for the ordered flow table."""

import pytest

from repro.classifier.actions import ALLOW, DENY
from repro.classifier.flowtable import FlowTable
from repro.classifier.rule import FlowRule, Match
from repro.exceptions import RuleError
from repro.packet.fields import FlowKey


class TestOrdering:
    def test_priority_wins(self):
        table = FlowTable()
        table.add_rule(Match(tp_dst=80), DENY, priority=1, name="low")
        table.add_rule(Match(tp_dst=80), ALLOW, priority=10, name="high")
        assert table.lookup(FlowKey(tp_dst=80)).name == "high"

    def test_insertion_order_breaks_ties(self):
        table = FlowTable()
        table.add_rule(Match(tp_dst=80), ALLOW, priority=5, name="first")
        table.add_rule(Match(tp_dst=80), DENY, priority=5, name="second")
        assert table.lookup(FlowKey(tp_dst=80)).name == "first"

    def test_paper_fig6_overlap_example(self):
        """§2.1: packet matching rules #2 and #4 resolves to #2."""
        table = FlowTable()
        table.add_rule(Match(tp_dst=80), ALLOW, priority=40, name="#1")
        table.add_rule(Match(ip_src=0x0A000001), ALLOW, priority=30, name="#2")
        table.add_rule(Match(tp_src=12345), ALLOW, priority=20, name="#3")
        table.add_default_deny(name="#4")
        key = FlowKey(ip_src=0x0A000001, tp_src=34521, tp_dst=443)
        assert table.lookup(key).name == "#2"

    def test_classify_defaults_deny(self):
        table = FlowTable()
        table.add_rule(Match(tp_dst=80), ALLOW, priority=1)
        assert table.classify(FlowKey(tp_dst=81)) == DENY
        assert table.lookup(FlowKey(tp_dst=81)) is None


class TestMutation:
    def test_add_and_remove(self):
        table = FlowTable()
        rule = table.add_rule(Match(tp_dst=80), ALLOW)
        assert len(table) == 1
        table.remove(rule)
        assert len(table) == 0

    def test_remove_missing_raises(self):
        table = FlowTable()
        rule = FlowRule(Match(tp_dst=80), ALLOW)
        with pytest.raises(RuleError, match="not in table"):
            table.remove(rule)

    def test_add_requires_flowrule(self):
        with pytest.raises(RuleError):
            FlowTable().add("rule")  # type: ignore[arg-type]

    def test_clear(self):
        table = FlowTable()
        table.add_rule(Match(tp_dst=80), ALLOW)
        table.clear()
        assert len(table) == 0

    def test_extend(self):
        rules = [
            FlowRule(Match(tp_dst=80), ALLOW, priority=2),
            FlowRule(Match(tp_dst=81), DENY, priority=1),
        ]
        table = FlowTable()
        table.extend(rules)
        assert len(table) == 2

    def test_version_bumps_on_change(self):
        table = FlowTable()
        version = table.version
        table.add_rule(Match(tp_dst=80), ALLOW)
        assert table.version > version

    def test_subscription_fires(self):
        table = FlowTable()
        events = []
        table.subscribe(lambda: events.append(1))
        table.add_rule(Match(tp_dst=80), ALLOW)
        table.clear()
        assert len(events) == 2


class TestStructure:
    def test_order_independence_detection(self):
        disjoint = FlowTable()
        disjoint.add_rule(Match(tp_dst=80), ALLOW)
        disjoint.add_rule(Match(tp_dst=81), DENY)
        assert disjoint.is_order_independent()

        overlapping = FlowTable()
        overlapping.add_rule(Match(tp_dst=80), ALLOW)
        overlapping.add_default_deny()
        assert not overlapping.is_order_independent()

    def test_overlapping_pairs(self):
        table = FlowTable()
        a = table.add_rule(Match(tp_dst=80), ALLOW, priority=2, name="a")
        b = table.add_default_deny(name="b")
        pairs = table.overlapping_pairs()
        assert (a, b) in pairs

    def test_format_table_renders(self):
        table = FlowTable(name="acl")
        table.add_rule(Match(tp_dst=80), ALLOW, name="allow-web")
        text = table.format_table()
        assert "acl" in text
        assert "allow-web" in text

    def test_default_deny_lowest_priority(self):
        table = FlowTable()
        table.add_default_deny()
        table.add_rule(Match(tp_dst=80), ALLOW, priority=10)
        assert table.classify(FlowKey(tp_dst=80)) == ALLOW
