"""Unit tests for the attack planner (§7 exposure reasoning)."""

import pytest

from repro.core.planner import plan_colocated, plan_for_cms, plan_general
from repro.core.tracegen import ColocatedTraceGenerator
from repro.core.usecases import DP, SIPDP, SIPSPDP
from repro.exceptions import ExperimentError
from repro.netsim.cms import BACKENDS
from repro.packet.headers import PROTO_TCP


class TestColocatedPlans:
    def test_packet_counts_match_real_traces(self):
        """The plan's trace size equals the generator's actual output."""
        for scenario in (DP, SIPDP, SIPSPDP):
            plan = plan_colocated(scenario)
            table = scenario.build_table()
            trace = ColocatedTraceGenerator(table, base={"ip_proto": PROTO_TCP}).generate()
            assert plan.packets == len(trace), scenario.name
            assert plan.masks == trace.expected_masks

    def test_paper_headline_bandwidth(self):
        """§1: ~1000 packets at 1000 pps ≈ 0.67 Mbps tears down OVS."""
        plan = plan_colocated(SIPDP, pps=1000)
        assert plan.attack_mbps == pytest.approx(0.67, abs=0.01)

    def test_victim_fraction_from_curve(self):
        plan = plan_colocated(SIPSPDP)
        assert plan.victim_fraction < 0.01  # the 0.2% story

    def test_accepts_names(self):
        assert plan_colocated("sipdp").use_case is SIPDP

    def test_validation(self):
        with pytest.raises(ExperimentError):
            plan_colocated(DP, pps=0)


class TestGeneralPlans:
    def test_expectation_matches_analysis(self):
        from repro.core.analysis import expected_masks

        plan = plan_general(SIPDP, packets=50000)
        assert plan.masks == pytest.approx(expected_masks((16, 32), 50000))

    def test_general_needs_more_packets(self):
        co = plan_colocated(SIPDP)
        general = plan_general(SIPDP, packets=co.packets)
        assert general.masks < co.masks  # same budget, fewer masks (§6.2)

    def test_validation(self):
        with pytest.raises(ExperimentError):
            plan_general(DP, packets=-1)
        with pytest.raises(ExperimentError):
            plan_general(DP, packets=10, pps=0)


class TestCmsExposure:
    def test_openstack_capped_at_sipdp(self):
        plans = plan_for_cms(BACKENDS["openstack"])
        cases = {plan.use_case.name for plan in plans}
        assert "SipSpDp" not in cases
        assert "SipDp" in cases

    def test_calico_admits_full_attack(self):
        plans = plan_for_cms(BACKENDS["calico"])
        assert any(plan.use_case.name == "SipSpDp" for plan in plans)

    def test_sorted_strongest_first(self):
        plans = plan_for_cms(BACKENDS["calico"])
        fractions = [plan.victim_fraction for plan in plans]
        assert fractions == sorted(fractions)

    def test_summary_renders(self):
        plan = plan_colocated(DP)
        text = plan.summary()
        assert "Dp" in text
        assert "masks" in text
