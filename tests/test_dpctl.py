"""Unit tests for the ovs-dpctl-style introspection."""

import pytest

from repro.classifier.backend import megaflow_backend_names
from repro.core.tracegen import ColocatedTraceGenerator
from repro.core.usecases import DP, SIPDP
from repro.packet.fields import FlowKey
from repro.packet.headers import PROTO_TCP
from repro.switch.datapath import Datapath, DatapathConfig
from repro.switch.dpctl import dump_flows, format_flow, mask_histogram, show


# dpctl renders the protocol surface (entries / masks / counters /
# memory_bytes), never TupleSpaceSearch internals, so the attacked-cache
# rendering tests run over every registered backend.
@pytest.fixture(params=megaflow_backend_names())
def attacked(request):
    table = SIPDP.build_table()
    datapath = Datapath(
        table,
        DatapathConfig(microflow_capacity=0, megaflow_backend=request.param),
    )
    trace = ColocatedTraceGenerator(table, base={"ip_proto": PROTO_TCP}).generate()
    for key in trace.keys:
        datapath.process(key)
    return datapath


class TestShow:
    def test_mask_total_is_the_figure_of_merit(self, attacked):
        text = show(attacked)
        assert "total:513" in text  # the SipDp ceiling
        assert "flows: 529" in text

    def test_lookup_counters(self, attacked):
        text = show(attacked)
        assert "lookups:" in text
        assert "missed:" in text

    def test_slow_path_counters(self, attacked):
        """The upcall-pressure line renders the slow-path stats verbatim."""
        stats = attacked.stats
        assert (
            f"slow path: upcalls:{stats.upcalls} installs:{stats.installs} "
            f"rejected:{stats.install_rejected} dead:{stats.dead_entry_suppressed}"
        ) in show(attacked)
        assert stats.upcalls > 0

    def test_slow_path_counters_per_pmd(self):
        """Sharded ``show`` carries the slow path line on every pmd line."""
        from repro.switch.sharded import ShardedDatapath

        table = SIPDP.build_table()
        datapath = ShardedDatapath(
            table, DatapathConfig(microflow_capacity=0), n_shards=2
        )
        trace = ColocatedTraceGenerator(table, base={"ip_proto": PROTO_TCP}).generate()
        datapath.process_batch(list(trace.keys))
        pmd_lines = [line for line in show(datapath).splitlines() if "pmd queue" in line]
        assert len(pmd_lines) == 2
        assert all("slow path: upcalls:" in line for line in pmd_lines)

    def test_microflow_line_optional(self):
        table = DP.build_table()
        with_emc = Datapath(table)
        assert "microflows:" in show(with_emc)
        without = Datapath(table, DatapathConfig(microflow_capacity=0))
        assert "microflows:" not in show(without)


class TestDumpFlows:
    def test_one_line_per_flow(self, attacked):
        lines = dump_flows(attacked).splitlines()
        assert len(lines) == attacked.n_megaflows

    def test_truncation(self, attacked):
        lines = dump_flows(attacked, max_flows=10).splitlines()
        assert len(lines) == 11
        assert "more" in lines[-1]

    def test_flow_rendering(self):
        table = DP.build_table()
        datapath = Datapath(table, DatapathConfig(microflow_capacity=0))
        verdict = datapath.process(FlowKey(ip_proto=PROTO_TCP, tp_dst=80))
        line = format_flow(verdict.installed)
        assert "ip_proto=6" in line
        assert "tp_dst=80" in line
        assert "actions:allow" in line

    def test_deny_rendering_with_prefix(self):
        table = DP.build_table()
        datapath = Datapath(table, DatapathConfig(microflow_capacity=0))
        verdict = datapath.process(FlowKey(ip_proto=PROTO_TCP, tp_dst=0x8000 | 80))
        line = format_flow(verdict.installed)
        assert "actions:drop" in line
        assert "/" in line  # partially-wildcarded port renders value/mask

    def test_ip_rendering_cidr(self):
        table = SIPDP.build_table()
        datapath = Datapath(table, DatapathConfig(microflow_capacity=0))
        datapath.process(
            FlowKey(ip_proto=PROTO_TCP, ip_src=0x0A000001, tp_src=1, tp_dst=81)
        )
        text = dump_flows(datapath)
        assert "ip_src=10.0.0.1" in text


class TestHistogram:
    def test_staircase_shape(self, attacked):
        histogram = mask_histogram(attacked)
        assert sum(histogram.values()) == attacked.n_masks
        # The TSE staircase: many distinct wildcard levels.
        assert len(histogram) > 20

    def test_empty(self):
        datapath = Datapath(DP.build_table())
        assert mask_histogram(datapath) == {}


class TestExecutorLine:
    def test_renders_transport_and_kernel(self):
        from repro.classifier.kernel import resolve_scan_kernel_name
        from repro.switch.sharded import ShardedDatapath

        table = SIPDP.build_table()
        datapath = ShardedDatapath(
            table,
            DatapathConfig(microflow_capacity=0, executor="process"),
            n_shards=2,
        )
        try:
            text = show(datapath)
            kernel = resolve_scan_kernel_name("auto")
            assert f"pmd executor: process[2 workers]/shm, kernel={kernel}" in text
        finally:
            datapath.close()

    def test_renders_numpy_kernel_when_selected(self):
        from repro.switch.sharded import ShardedDatapath

        table = SIPDP.build_table()
        datapath = ShardedDatapath(
            table,
            DatapathConfig(microflow_capacity=0, scan_kernel="numpy"),
            n_shards=2,
        )
        assert "pmd executor: serial, kernel=numpy" in show(datapath)

    def test_kernelless_backend_renders_none(self):
        from repro.switch.sharded import ShardedDatapath

        backends = [b for b in megaflow_backend_names() if b != "tss"]
        if not backends:
            pytest.skip("only the tss backend is registered")
        table = SIPDP.build_table()
        datapath = ShardedDatapath(
            table,
            DatapathConfig(microflow_capacity=0, megaflow_backend=backends[0]),
            n_shards=2,
        )
        assert "kernel=none" in show(datapath)
