#!/usr/bin/env python
"""The bench-trajectory gate: diff fresh bench results against the committed
perf trajectory, with per-metric regression thresholds.

The committed ``results/BENCH_*.json`` files are the repo's full-size perf
trajectory (smoke runs publish to gitignored ``.smoke.json`` files and never
touch them).  This tool is what turns that trajectory into an automated
regression gate:

* ``--list-benches`` derives the perf-guard bench list from the trajectory
  itself: every committed ``results/BENCH_<name>.json`` maps to
  ``benchmarks/bench_<name>.py`` (and must exist) — so a new bench that
  publishes a trajectory file is picked up by CI automatically, with no
  hardcoded file list to forget to update.
* ``--baseline DIR --current DIR`` compares two result directories metric
  by metric and exits non-zero on any regression.  Metrics are classified
  by name: wall-clock metrics (``*pps*``, ``*seconds*``, ``speedup*``,
  ``*ratio*``) get loose directional thresholds that survive runner
  variance; everything else (mask counts, entry counts, simulated Gbps
  floors…) is deterministic simulation output and must match tightly.
  A metric present in the baseline but missing from the current run is a
  regression; new metrics are reported but pass.
* ``--self-test`` verifies the gate can actually fail: it injects a
  synthetic regression into a copy of the committed trajectory and
  asserts the comparison rejects it (and that the unmodified trajectory
  passes against itself).  CI runs this before trusting a green diff.

Exit codes: 0 = trajectory holds, 1 = regression(s), 2 = usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from dataclasses import dataclass
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = REPO_ROOT / "results"
BENCHMARKS_DIR = REPO_ROOT / "benchmarks"

#: Metric keys that are environment descriptions, not comparable results.
IGNORED_KEYS = frozenset({"cpus"})

#: (regex over the metric key, direction, relative tolerance).  First match
#: wins; checked per metric name.  Directions: "higher" fails when the
#: current value drops more than tol below baseline, "lower" fails when it
#: rises more than tol above, "equal" fails outside a +-tol band.
DEFAULT_RULES: tuple[tuple[str, str, float], ...] = (
    # Wall-clock measurements: noisy across runners, only large drops are
    # actionable.
    (r"pps", "higher", 0.50),
    (r"tenants_per_sec", "higher", 0.50),
    # The batched slow path must keep its margin over the scalar upcall
    # path (bench_upcall's figure of merit; ordered before the generic
    # speedup rule so its guard is named explicitly).
    (r"upcall_speedup", "higher", 0.35),
    (r"speedup", "higher", 0.35),
    (r"seconds", "lower", 1.00),
    # Ratio guards around timing (insert scaling should stay near-linear:
    # lower is better; floor ratios measure a defense win: higher better).
    (r"^insert_ratio", "lower", 0.75),
    # Migration guards: recovery must not get slower, and the recovered
    # floor must keep its margin over the undefended one.  Ordered before
    # the generic floor_ratio rule — re.search would match ``floor_ratio``
    # inside ``recovered_floor_ratio``.
    (r"time_to_recover", "lower", 0.50),
    (r"recovered_floor_ratio", "higher", 0.35),
    # The rebalancing defender's win in the RSS retargeting game
    # (bench_rebalance's figure of merit; named before the generic
    # floor_ratio rule so its guard is explicit, like upcall_speedup).
    (r"rebalance_floor_ratio", "higher", 0.35),
    (r"floor_ratio", "higher", 0.35),
    # Transport guard: the shm data plane must keep beating the pickled
    # pipe; a drop here means the zero-copy path regressed.
    (r"shm_over_pipe", "higher", 0.35),
    # Everything else numeric is deterministic simulation output.
    (r".", "equal", 0.02),
)


@dataclass(frozen=True)
class Finding:
    """One metric-level comparison outcome."""

    bench: str
    metric: str
    kind: str  # "regression" | "new-metric" | "ok"
    detail: str

    @property
    def failed(self) -> bool:
        return self.kind == "regression"


def trajectory_files(results_dir: Path = RESULTS_DIR) -> list[Path]:
    """The committed full-size trajectory files (smoke files excluded)."""
    return sorted(
        path
        for path in results_dir.glob("BENCH_*.json")
        if not path.name.endswith(".smoke.json")
    )


def guarded_benches(
    results_dir: Path = RESULTS_DIR, benchmarks_dir: Path = BENCHMARKS_DIR
) -> list[Path]:
    """Map every trajectory file onto its benchmark module.

    Raises ``FileNotFoundError`` when a trajectory file has no matching
    bench — a deleted bench must take its trajectory with it, otherwise
    the gate would silently stop guarding that surface.
    """
    benches = []
    for path in trajectory_files(results_dir):
        name = path.stem[len("BENCH_"):]
        bench = benchmarks_dir / f"bench_{name}.py"
        if not bench.exists():
            raise FileNotFoundError(
                f"{path.name} has no matching {bench.name} — remove the "
                "stale trajectory file or restore the benchmark"
            )
        benches.append(bench)
    return benches


def _rule_for(metric: str) -> tuple[str, float]:
    for pattern, direction, tolerance in DEFAULT_RULES:
        if re.search(pattern, metric):
            return direction, tolerance
    return "equal", 0.02  # pragma: no cover - the catch-all rule matches


def _compare_number(bench: str, metric: str, base: float, cur: float) -> Finding:
    direction, tol = _rule_for(metric)
    scale = max(abs(base), 1e-12)
    delta = (cur - base) / scale
    detail = f"{base} -> {cur} ({delta:+.1%}, rule {direction}±{tol:.0%})"
    if direction == "higher" and delta < -tol:
        return Finding(bench, metric, "regression", detail)
    if direction == "lower" and delta > tol:
        return Finding(bench, metric, "regression", detail)
    if direction == "equal" and abs(delta) > tol:
        return Finding(bench, metric, "regression", detail)
    return Finding(bench, metric, "ok", detail)


def _compare_value(bench: str, metric: str, base, cur) -> list[Finding]:
    if isinstance(base, bool) or isinstance(cur, bool):
        base, cur = str(base), str(cur)
    if isinstance(base, (int, float)) and isinstance(cur, (int, float)):
        return [_compare_number(bench, metric, float(base), float(cur))]
    if isinstance(base, list) and isinstance(cur, list):
        if len(base) != len(cur):
            return [
                Finding(
                    bench,
                    metric,
                    "regression",
                    f"length changed {len(base)} -> {len(cur)}",
                )
            ]
        findings: list[Finding] = []
        for index, (b, c) in enumerate(zip(base, cur)):
            findings.extend(_compare_value(bench, f"{metric}[{index}]", b, c))
        return findings
    if base != cur:
        return [Finding(bench, metric, "regression", f"{base!r} -> {cur!r}")]
    return [Finding(bench, metric, "ok", f"{base!r}")]


def compare_payloads(bench: str, baseline: dict, current: dict) -> list[Finding]:
    """Compare one bench's committed payload against a fresh run."""
    findings: list[Finding] = []
    for metric in sorted(baseline):
        if metric in IGNORED_KEYS:
            continue
        if metric not in current:
            findings.append(
                Finding(bench, metric, "regression", "metric missing from current run")
            )
            continue
        findings.extend(_compare_value(bench, metric, baseline[metric], current[metric]))
    for metric in sorted(set(current) - set(baseline) - IGNORED_KEYS):
        findings.append(Finding(bench, metric, "new-metric", f"{current[metric]!r}"))
    return findings


def compare_dirs(baseline_dir: Path, current_dir: Path) -> list[Finding]:
    """Compare every trajectory file present in ``baseline_dir``."""
    findings: list[Finding] = []
    for base_path in trajectory_files(baseline_dir):
        bench = base_path.stem[len("BENCH_"):]
        cur_path = current_dir / base_path.name
        if not cur_path.exists():
            findings.append(
                Finding(bench, "<file>", "regression", f"{base_path.name} not produced")
            )
            continue
        findings.extend(
            compare_payloads(
                bench,
                json.loads(base_path.read_text()),
                json.loads(cur_path.read_text()),
            )
        )
    return findings


def render_markdown(findings: list[Finding]) -> str:
    """The artifact report: regressions first, then notes, then the rest."""
    regressions = [f for f in findings if f.kind == "regression"]
    new_metrics = [f for f in findings if f.kind == "new-metric"]
    lines = ["# Bench trajectory diff", ""]
    lines.append(
        f"**{len(regressions)} regression(s)** across "
        f"{len({f.bench for f in findings})} bench payload(s); "
        f"{len(new_metrics)} new metric(s)."
    )
    for title, rows in (("Regressions", regressions), ("New metrics", new_metrics)):
        lines += ["", f"## {title}", ""]
        if not rows:
            lines.append("(none)")
            continue
        lines.append("| bench | metric | detail |")
        lines.append("|---|---|---|")
        lines += [f"| {f.bench} | {f.metric} | {f.detail} |" for f in rows]
    lines += ["", "## All comparisons", ""]
    lines += [f"- `{f.bench}.{f.metric}`: {f.kind} — {f.detail}" for f in findings]
    return "\n".join(lines) + "\n"


def self_test() -> int:
    """Prove the gate bites: a synthetic regression must be rejected.

    Uses the committed trajectory as its own baseline (which must pass),
    then injects a synthetic 10x pps collapse, a mask-count drift and a
    dropped metric (which must each fail), plus a 3x recovery-time
    slowdown into the migration trajectory (the ``time_to_recover`` rule
    must reject it).
    """
    files = trajectory_files()
    if not files:
        print("self-test: no committed trajectory files found", file=sys.stderr)
        return 2
    clean = compare_dirs(RESULTS_DIR, RESULTS_DIR)
    clean_regressions = [f for f in clean if f.failed]
    if clean_regressions:
        print("self-test: committed trajectory does not pass against itself:")
        for finding in clean_regressions:
            print(f"  {finding.bench}.{finding.metric}: {finding.detail}")
        return 1

    baseline = json.loads(files[0].read_text())
    bench = files[0].stem[len("BENCH_"):]
    doctored = dict(baseline)
    synthetic: list[str] = []
    for metric, value in baseline.items():
        if metric in IGNORED_KEYS:
            continue
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        direction, _tol = _rule_for(metric)
        if direction == "higher" and "pps" in metric:
            doctored[metric] = value / 10.0  # a 10x throughput collapse
            synthetic.append(metric)
        elif direction == "equal" and isinstance(value, int) and value > 10:
            doctored[metric] = value + max(1, value // 2)  # structural drift
            synthetic.append(metric)
    dropped = next(m for m in baseline if m not in IGNORED_KEYS)
    del doctored[dropped]
    synthetic.append(f"{dropped} (dropped)")

    findings = compare_payloads(bench, baseline, doctored)
    caught = {f.metric for f in findings if f.failed}
    expected = {m.split(" ")[0] for m in synthetic}
    missed = expected - caught
    if missed:
        print(f"self-test: synthetic regressions NOT caught: {sorted(missed)}")
        return 1

    # The migration guard must bite on a slower recovery specifically: a
    # 3x time_to_recover_s slowdown (well past the 50% tolerance) has to
    # be rejected even though every other metric is untouched.
    migration_path = RESULTS_DIR / "BENCH_migration.json"
    if not migration_path.exists():
        print("self-test: BENCH_migration.json missing from trajectory",
              file=sys.stderr)
        return 2
    payload = json.loads(migration_path.read_text())
    slowed = dict(payload)
    slowed_metrics = sorted(m for m in payload if "time_to_recover" in m)
    for metric in slowed_metrics:
        slowed[metric] = payload[metric] * 3.0
    slow_findings = compare_payloads("migration", payload, slowed)
    slow_caught = {f.metric for f in slow_findings if f.failed}
    slow_missed = set(slowed_metrics) - slow_caught
    if not slowed_metrics or slow_missed:
        print(
            "self-test: synthetic recovery-time regression NOT caught: "
            f"{sorted(slow_missed) or 'no time_to_recover metric published'}"
        )
        return 1
    expected.update(slowed_metrics)

    # The upcall guard must bite on a slower batched engine specifically:
    # a 3x upcall_speedup collapse (well past the 35% tolerance) has to be
    # rejected even though every other metric is untouched.
    upcall_path = RESULTS_DIR / "BENCH_upcall.json"
    if not upcall_path.exists():
        print("self-test: BENCH_upcall.json missing from trajectory",
              file=sys.stderr)
        return 2
    payload = json.loads(upcall_path.read_text())
    collapsed = dict(payload)
    collapsed_metrics = sorted(m for m in payload if "upcall_speedup" in m)
    for metric in collapsed_metrics:
        collapsed[metric] = payload[metric] / 3.0
    upcall_findings = compare_payloads("upcall", payload, collapsed)
    upcall_caught = {f.metric for f in upcall_findings if f.failed}
    upcall_missed = set(collapsed_metrics) - upcall_caught
    if not collapsed_metrics or upcall_missed:
        print(
            "self-test: synthetic upcall-speedup regression NOT caught: "
            f"{sorted(upcall_missed) or 'no upcall_speedup metric published'}"
        )
        return 1
    expected.update(collapsed_metrics)

    # The rebalance guard must bite on a weaker defense specifically: a 3x
    # collapse of the retargeting game's floor ratio (well past the 35%
    # tolerance) has to be rejected even though every other metric is
    # untouched.
    rebalance_path = RESULTS_DIR / "BENCH_rebalance.json"
    if not rebalance_path.exists():
        print("self-test: BENCH_rebalance.json missing from trajectory",
              file=sys.stderr)
        return 2
    payload = json.loads(rebalance_path.read_text())
    weakened = dict(payload)
    weakened_metrics = sorted(m for m in payload if "rebalance_floor_ratio" in m)
    for metric in weakened_metrics:
        weakened[metric] = payload[metric] / 3.0
    rebalance_findings = compare_payloads("rebalance", payload, weakened)
    rebalance_caught = {f.metric for f in rebalance_findings if f.failed}
    rebalance_missed = set(weakened_metrics) - rebalance_caught
    if not weakened_metrics or rebalance_missed:
        print(
            "self-test: synthetic rebalance-floor regression NOT caught: "
            f"{sorted(rebalance_missed) or 'no rebalance_floor_ratio metric published'}"
        )
        return 1
    expected.update(weakened_metrics)
    print(
        f"self-test OK: clean trajectory passes; {len(expected)} synthetic "
        f"regression(s) (BENCH_{bench} + BENCH_migration + BENCH_upcall + "
        f"BENCH_rebalance) all rejected ({', '.join(sorted(expected))})"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--list-benches", action="store_true",
                        help="print the trajectory-derived perf bench list and exit")
    parser.add_argument("--baseline", type=Path,
                        help="directory holding the committed trajectory")
    parser.add_argument("--current", type=Path,
                        help="directory holding the freshly produced results")
    parser.add_argument("--json", type=Path, help="write findings as JSON here")
    parser.add_argument("--markdown", type=Path, help="write the report here")
    parser.add_argument("--self-test", action="store_true",
                        help="verify a synthetic regression is rejected")
    args = parser.parse_args(argv)

    if args.list_benches:
        print(" ".join(str(b.relative_to(REPO_ROOT)) for b in guarded_benches()))
        return 0
    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        parser.error("--baseline and --current are required for a diff")

    findings = compare_dirs(args.baseline, args.current)
    regressions = [f for f in findings if f.failed]
    if args.json:
        args.json.write_text(
            json.dumps(
                [f.__dict__ for f in findings], indent=2, sort_keys=True
            )
            + "\n"
        )
    if args.markdown:
        args.markdown.write_text(render_markdown(findings))
    for finding in findings:
        if finding.kind != "ok":
            print(f"{finding.kind}: {finding.bench}.{finding.metric} — {finding.detail}")
    print(
        f"bench-trajectory: {len(regressions)} regression(s), "
        f"{len(findings)} comparison(s)"
    )
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
