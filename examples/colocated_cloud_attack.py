#!/usr/bin/env python3
"""Co-located TSE in a simulated multi-tenant cloud (the Fig. 7 / Fig. 8a story).

A victim tenant serves iperf traffic through a shared hypervisor switch.
An attacker tenant leases a VM on the same server, installs a perfectly
ordinary-looking ACL for *its own* service through the CMS, and replays
50 kbps of crafted packets at itself.  The victim — whose ACL and traffic
are untouched — collapses, because both tenants share the megaflow cache.

Run:  python examples/colocated_cloud_attack.py
"""

from repro.core import ColocatedTraceGenerator
from repro.netsim import (
    ActiveWindow,
    AttackSource,
    Datacenter,
    PolicyRule,
    Simulation,
    SYNTHETIC_ENV,
    VictimFlow,
)
from repro.packet.fields import FlowKey
from repro.packet.headers import PROTO_TCP

TRUSTED_IP = 0x0A000001  # 10.0.0.1


def main() -> None:
    # --- the cloud -----------------------------------------------------------
    cloud = Datacenter(SYNTHETIC_ENV, n_servers=2)
    v1 = cloud.launch_vm("victim-tenant", "V1", 0)     # victim frontend
    a1 = cloud.launch_vm("attacker-tenant", "A1", 0)   # co-located!
    v2 = cloud.launch_vm("victim-tenant", "V2", 1)     # victim backend
    server = cloud.servers[0]

    # --- tenants install their ACLs through the CMS ----------------------------
    server.install_policy(v1, [PolicyRule(dst_port=5001)], label="acl-v")
    server.install_policy(
        a1,
        [
            PolicyRule(dst_port=80),
            PolicyRule(remote_ip=(TRUSTED_IP, 0xFFFFFFFF)),
            PolicyRule(src_port=12345),  # Calico-style source-port rule
        ],
        label="acl-a",
    )
    server.ensure_default_deny()

    # --- the attack trace: crafted against the attacker's own ACL ---------------
    trace = ColocatedTraceGenerator(
        server.flow_table, base={"ip_dst": a1.ip, "ip_proto": PROTO_TCP}
    ).generate("SipSpDp")
    print(f"attack trace: {len(trace)} packets, expected masks {trace.expected_masks}")

    # --- wire the simulation -----------------------------------------------------
    simulation = Simulation(dt=0.1)
    victim = VictimFlow(
        host=server.host,
        name="victim-iperf",
        keys=(FlowKey(ip_src=v2.ip, ip_dst=v1.ip, ip_proto=PROTO_TCP,
                      tp_src=52000, tp_dst=5001),),
        offered_gbps=9.5,
        kind="tcp",
    )
    attacker = AttackSource(
        host=server.host,
        keys=trace.keys,
        pps=1000,  # ~0.67 Mbps — the paper's teardown budget
        windows=[ActiveWindow(20.0, 50.0)],
    )
    simulation.add(victim)
    simulation.add(attacker)
    simulation.add(server.host)

    print(f"\n{'t[s]':>6} {'victim Gbps':>12} {'masks':>7} {'megaflows':>10}")

    def observer(now: float) -> None:
        victim.settle(now, simulation.dt)
        if round(now * 10) % 50 == 0:  # print every 5 s
            print(f"{now:6.1f} {victim.rate_gbps:12.3f} "
                  f"{server.datapath.n_masks:7d} {server.datapath.n_megaflows:10d}")

    simulation.observe(observer)
    simulation.run(80.0)

    print("\nThe victim collapsed while the attacker spent ~0.67 Mbps — and "
          "recovered ~10 s after the attack stopped (the megaflow idle timeout).")


if __name__ == "__main__":
    main()
