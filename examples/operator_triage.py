#!/usr/bin/env python3
"""Operator triage: recognise a tuple space explosion from the switch side.

Plays both roles: first the attacker quietly explodes the tuple space, then
the operator inspects the datapath with the `ovs-dpctl`-style tooling the
paper's Algorithm 2 builds on, attributes the damage with the TSE pattern
detector, and consults the attack planner to see what this cloud's CMS
would have allowed in the first place.

Run:  python examples/operator_triage.py
"""

from repro.core import ColocatedTraceGenerator, SIPDP, find_tse_entries, plan_for_cms
from repro.netsim import BACKENDS
from repro.packet.headers import PROTO_TCP
from repro.switch import Datapath, DatapathConfig
from repro.switch.dpctl import dump_flows, mask_histogram, show


def main() -> None:
    # --- the incident -------------------------------------------------------
    table = SIPDP.build_table()
    datapath = Datapath(table, DatapathConfig(microflow_capacity=0))
    trace = ColocatedTraceGenerator(table, base={"ip_proto": PROTO_TCP}).generate()
    for key in trace.keys:
        datapath.process(key, now=1.0)

    # --- step 1: the summary an operator pulls first --------------------------
    print("$ ovs-dpctl show")
    print(show(datapath))

    # --- step 2: eyeball a few flows ------------------------------------------
    print("\n$ ovs-dpctl dump-flows | head -5")
    print(dump_flows(datapath, max_flows=5))

    # --- step 3: the mask staircase is the smoking gun --------------------------
    histogram = mask_histogram(datapath)
    print(f"\nmask histogram: {len(histogram)} distinct wildcard levels "
          f"(benign caches have a handful) — sample: "
          f"{dict(list(histogram.items())[:5])}")

    # --- step 4: attribute it to rules -----------------------------------------
    patterns = find_tse_entries(datapath.megaflows, table)
    print("\nTSE attribution:")
    for pattern in patterns:
        print(f"  rule {pattern.rule.name!r}: {len(pattern.entries)} adversarial "
              f"entries across {pattern.mask_count} masks")

    # --- step 5: what could this cloud's CMS have prevented? --------------------
    print("\nexposure review (what each CMS admits):")
    for backend_name in ("openstack", "calico"):
        print(f"  {backend_name}:")
        for plan in plan_for_cms(BACKENDS[backend_name])[:2]:
            print(f"    {plan.summary()}")


if __name__ == "__main__":
    main()
