#!/usr/bin/env python3
"""General TSE: attacking an *unknown* ACL with random packets (§6).

No co-location, no knowledge of the installed policies — just random
values in the header fields cloud ACLs typically match on.  The script
compares the measured mask growth against the paper's analytic expectation
(Eq. 2 with the §11.3 convolution), then shows the throughput damage, and
finally exports the trace as a replayable pcap.

Run:  python examples/general_attack.py
"""

import tempfile
from pathlib import Path

from repro import CostModel, Datapath, DatapathConfig, GeneralTraceGenerator, expected_masks
from repro.core import SIPDP
from repro.packet.headers import PROTO_TCP


def main() -> None:
    # The victim's ACL — the attacker never sees this object.
    table = SIPDP.build_table()
    widths = SIPDP.field_widths()
    print(f"target: a hidden {SIPDP.name} ACL (fields {SIPDP.allow_fields}, "
          f"widths {widths})")

    # The attacker only guesses *which fields* matter (source IP and
    # destination port are what OpenStack/Kubernetes policies can filter).
    generator = GeneralTraceGenerator(
        fields=("ip_src", "tp_dst"), base={"ip_proto": PROTO_TCP}, seed=7
    )
    datapath = Datapath(table, DatapathConfig(microflow_capacity=0))
    model = CostModel()

    print(f"\n{'packets':>8} {'masks (measured)':>17} {'masks (Eq. 2)':>14} "
          f"{'victim Gbps':>12}")
    sent = 0
    for checkpoint in (100, 1000, 5000, 20000, 50000):
        for key in generator.keys(checkpoint - sent):
            datapath.process(key)
        sent = checkpoint
        expectation = expected_masks(widths, checkpoint)
        print(f"{checkpoint:8d} {datapath.n_masks:17d} {expectation:14.1f} "
              f"{model.victim_gbps(datapath.n_masks):12.3f}")

    print("\npaper (§6.2): ~122 masks at 50k packets for SipDp, reducing GRO OFF "
          "capacity to 12%")

    # Export a 1000-packet trace as pcap — what the paper replays at the
    # switch (§5.4: "replaying a pcap file").
    trace = generator.generate(1000)
    pcap_path = Path(tempfile.gettempdir()) / "general_tse_trace.pcap"
    count = trace.to_pcap(pcap_path, rate_pps=1000)
    print(f"\nwrote {count} attack packets to {pcap_path} "
          f"({pcap_path.stat().st_size} bytes, replay at 1000 pps = 0.67 Mbps)")


if __name__ == "__main__":
    main()
