#!/usr/bin/env python3
"""Quickstart: mount a Tuple Space Explosion attack in ~40 lines.

Builds the paper's Fig. 6 ACL (allow web traffic, a trusted host and a
trusted source port; deny the rest), crafts the co-located adversarial
trace, replays it through a simulated Open vSwitch datapath, and reports
what happened to the tuple space — and to a victim's throughput.

Run:  python examples/quickstart.py
"""

from repro import ColocatedTraceGenerator, CostModel, Datapath
from repro.core import SIPSPDP
from repro.packet.headers import PROTO_TCP


def main() -> None:
    # 1. The victim-side ACL (Fig. 6): three allow rules + DefaultDeny.
    table = SIPSPDP.build_table()
    print(table.format_table())

    # 2. A simulated OVS datapath enforcing it.
    datapath = Datapath(table)
    print(f"\nfresh datapath: {datapath!r}")

    # 3. The co-located TSE trace: one packet per decision path of the ACL.
    trace = ColocatedTraceGenerator(table, base={"ip_proto": PROTO_TCP}).generate("SipSpDp")
    print(f"adversarial trace: {len(trace)} packets "
          f"(~{len(trace) * 84 * 8 / 1e6:.2f} Mbit once, at any rate you like)")

    # 4. Replay.  Every packet is legitimate; none of them is ever accepted.
    for key in trace.keys:
        datapath.process(key)
    print(f"after replay: {datapath!r}")

    # 5. The damage, through the calibrated cost model.
    model = CostModel()
    masks = datapath.n_masks
    print(f"\nmegaflow masks: {masks}  (paper: ~8200 for the full-blown attack)")
    print(f"victim throughput: {model.victim_gbps(1):.2f} Gbps -> "
          f"{model.victim_gbps(masks):.3f} Gbps "
          f"({100 * model.victim_fraction(masks):.1f}% of baseline; paper: 0.2%)")


if __name__ == "__main__":
    main()
