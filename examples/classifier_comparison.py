#!/usr/bin/env python3
"""Long-term mitigation (§7): classifiers that don't explode.

Feeds identical traffic — benign, then the full TSE trace, then benign
again — through five classifiers over the same Fig. 6 ACL:

* the TSS-cached datapath (what OVS does),
* plain linear search,
* hierarchical tries,
* HyperCuts,
* HaRP (hash round-down prefixes).

Lookup cost units differ per classifier; what matters is the *trend*: the
TSS cache's benign-traffic cost explodes after the attack (its mask list
is bloated), while the trie/decision-tree/hash alternatives are exactly as
fast as before — they are structurally immune to tuple space explosion.

Run:  python examples/classifier_comparison.py
"""

from repro.experiments.comparison import run


def main() -> None:
    result = run()
    print(result.format_table())

    print("\nReading the table: 'benign_cost' vs 'benign_after_cost' is the "
          "attack's lasting damage; only the TSS cache degrades (degradation_x >> 1).")


if __name__ == "__main__":
    main()
