#!/usr/bin/env python3
"""Long-term mitigation (§7): classifiers that don't explode.

Feeds identical traffic — benign, then the full TSE trace, then benign
again — through the registered comparison lineup
(``repro.classifier.section7_registry()``) over the same Fig. 6 ACL:

* the TSS-cached datapath (what OVS does),
* the TupleChain-cached datapath (grouped/chained megaflow lookup),
* plain linear search,
* hierarchical tries,
* HyperCuts,
* HaRP (hash round-down prefixes).

Lookup cost units differ per classifier; what matters is the *trend*: the
TSS cache's benign-traffic cost explodes after the attack (its mask list
is bloated), the TupleChain cache probes the same bloated cache in
near-constant chain steps, and the trie/decision-tree/hash alternatives
are exactly as fast as before — they are structurally immune to tuple
space explosion.

Run:  python examples/classifier_comparison.py
"""

from repro.classifier import section7_registry
from repro.experiments.comparison import run


def main() -> None:
    print("lineup:", ", ".join(section7_registry()))
    result = run()
    print(result.format_table())

    print("\nReading the table: 'benign_cost' vs 'benign_after_cost' is the "
          "attack's lasting damage; only the TSS cache degrades "
          "(degradation_x >> 1) — the tuplechain cache holds its probe "
          "count despite inheriting the same exploded mask list.")


if __name__ == "__main__":
    main()
