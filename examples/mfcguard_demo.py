#!/usr/bin/env python3
"""MFCGuard in action: detect the TSE pattern, evict it, keep service fast (§8).

Mounts a full-blown SipSpDp attack against a simulated datapath, then runs
MFCGuard's Algorithm 2: the guard finds the per-rule TSE patterns in the
megaflow cache, deletes the adversarial (deny) entries — never the useful
ones — and the tuple space collapses back to its benign size.  The price:
deleted entries never re-spark, so the attack traffic is pinned to the
slow path, whose CPU cost the Fig. 9c model quantifies.

Run:  python examples/mfcguard_demo.py
"""

from repro import ColocatedTraceGenerator, Datapath, DatapathConfig, MFCGuard, MFCGuardConfig
from repro.core import SIPSPDP, find_tse_entries
from repro.packet.fields import FlowKey
from repro.packet.headers import PROTO_TCP
from repro.switch.costmodel import SlowPathModel


def main() -> None:
    table = SIPSPDP.build_table()
    datapath = Datapath(table, DatapathConfig(microflow_capacity=0))

    # Benign traffic first: a web client the ACL admits.
    benign = FlowKey(ip_proto=PROTO_TCP, ip_src=0xC0A80001, tp_src=40000, tp_dst=80)
    verdict = datapath.process(benign, now=0.0)
    print(f"benign packet -> {verdict.action} via {verdict.path.value}")

    # The attack.
    trace = ColocatedTraceGenerator(table, base={"ip_proto": PROTO_TCP}).generate()
    for key in trace.keys:
        datapath.process(key, now=1.0)
    print(f"after attack: {datapath.n_masks} masks, {datapath.n_megaflows} entries")

    # What the detector sees.
    patterns = find_tse_entries(datapath.megaflows, table)
    for pattern in patterns:
        print(f"  TSE pattern against rule {pattern.rule.name!r}: "
              f"{len(pattern.entries)} entries / {pattern.mask_count} masks")

    # Algorithm 2.
    guard = MFCGuard(
        datapath,
        MFCGuardConfig(mask_threshold=100, cpu_threshold_pct=90.0),
        slow_path_model=SlowPathModel(),
    )
    report = guard.run(now=10.0)
    print(f"\nMFCGuard: deleted {report.entries_deleted} entries "
          f"({report.masks_before} -> {report.masks_after} masks), "
          f"rules cleaned: {', '.join(report.rules_cleaned)}")

    # The benign flow still rides the fast path...
    verdict = datapath.process(benign, now=11.0)
    print(f"benign packet -> {verdict.action} via {verdict.path.value} "
          f"(masks inspected: {verdict.masks_inspected})")

    # ...while replayed attack packets are stuck on the slow path forever.
    attack_key = trace.keys[len(trace.keys) // 2]
    for _ in range(3):
        verdict = datapath.process(attack_key, now=12.0)
    print(f"attack packet -> {verdict.action} via {verdict.path.value} "
          "(deleted megaflows never re-spark, §8)")
    print(f"\nslow-path CPU at 1,000 pps of demoted traffic: "
          f"{SlowPathModel().cpu_pct(1000):.0f}% "
          f"(paper: ~15%); at 10,000 pps: {SlowPathModel().cpu_pct(10000):.0f}% (paper: ~80%)")


if __name__ == "__main__":
    main()
